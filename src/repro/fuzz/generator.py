"""Seeded generation of random (collection, design, query) triples.

Everything derives deterministically from a :class:`CaseSpec`: the same
spec always yields the same documents, the same fragmentation design and
the same query texts, which is what makes minimization and committed
reproducers possible. Three families cover the paper's three experiment
shapes:

* ``items`` — an MD repository of Item documents, horizontally fragmented
  by a random partition of the Section values (equality groups plus a
  ≠-residual, so completeness holds for any value);
* ``articles`` — an MD repository of article documents, vertically
  fragmented either three ways (prolog/body/epilog) or as a prune
  complement (π/article,{/article/body} ⋈ π/article/body);
* ``store`` — an SD repository (one Store document), hybrid-fragmented
  into a remainder fragment pruning ``/Store/Items`` plus a random
  Section partition of the items, materialized as FragMode1 or FragMode2.

Queries are assembled as ASTs from the supported subset — FLWOR with
``where`` predicates, path-step predicates, ``contains`` text search,
``count``/``sum`` aggregation, computed element constructors, and
multi-fragment shapes that force the cross-fragment ID-join — then
rendered through :func:`repro.xquery.unparse.unparse`. Generation asserts
the ``parse(unparse(ast)) == ast`` round-trip on every query it emits, so
a broken unparser fails the fuzzer before it can corrupt the oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.datamodel.collection import Collection, RepositoryKind
from repro.partix.fragments import (
    FragmentationSchema,
    HorizontalFragment,
    HybridFragment,
    VerticalFragment,
)
from repro.partix.publisher import FragMode
from repro.paths.predicates import And, Or, Predicate, eq, ne
from repro.workloads.toxgene import (
    Choice,
    Counter,
    DateRange,
    IntRange,
    NodeTemplate,
    ToXgene,
    Words,
    child,
)
from repro.xquery.ast_nodes import (
    AxisStep,
    BinaryOp,
    ContextItem,
    ElementConstructor,
    Expr,
    FLWOR,
    ForClause,
    FunctionCall,
    Literal,
    PathApply,
    VarRef,
)
from repro.xquery.parser import parse_query
from repro.xquery.unparse import unparse

FAMILIES = ("items", "articles", "store")

#: Section vocabulary for items/store families. Queries deliberately also
#: probe values outside the generated subset (empty-answer edge cases).
SECTION_POOL = (
    "CD", "DVD", "Book", "Electronics", "Games", "Toys", "Garden", "Software",
)
#: Terms injected into text fields (and probed by contains() queries).
TEXT_TERMS = ("good", "novel", "remarkable", "frontier")
GENRES = ("research", "survey", "demo")
COUNTRIES = ("BR", "US", "DE", "FR")


class GenerationError(RuntimeError):
    """A generated artifact violated one of the generator's own invariants."""


@dataclass(frozen=True)
class CaseSpec:
    """Deterministic recipe for one fuzz case.

    The minimizer shrinks cases by editing these fields and regenerating;
    reproducers commit the spec verbatim (see :func:`CaseSpec.to_dict`).

    ``query_index`` pins a single query (None runs the whole generated
    set); ``strip_where`` / ``simple_return`` are minimizer knobs that
    simplify the pinned query after generation.
    """

    seed: int
    family: str
    doc_count: int
    fragment_count: int
    frag_mode: int = 2
    query_count: int = 5
    query_index: Optional[int] = None
    strip_where: bool = False
    simple_return: bool = False

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise GenerationError(f"unknown family {self.family!r}")
        if self.doc_count < 1 or self.fragment_count < 2 or self.query_count < 1:
            raise GenerationError(
                "doc_count >= 1, fragment_count >= 2 and query_count >= 1"
                " required"
            )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "family": self.family,
            "doc_count": self.doc_count,
            "fragment_count": self.fragment_count,
            "frag_mode": self.frag_mode,
            "query_count": self.query_count,
            "query_index": self.query_index,
            "strip_where": self.strip_where,
            "simple_return": self.simple_return,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CaseSpec":
        return cls(**payload)

    def describe(self) -> str:
        pinned = "all" if self.query_index is None else f"#{self.query_index}"
        return (
            f"{self.family}(seed={self.seed}, docs={self.doc_count},"
            f" fragments={self.fragment_count}, frag_mode={self.frag_mode},"
            f" query={pinned})"
        )


@dataclass
class GeneratedCase:
    """One materialized fuzz case."""

    spec: CaseSpec
    collection: Collection
    design: FragmentationSchema
    queries: list[str]
    frag_mode: FragMode
    notes: list[str] = field(default_factory=list)

    @property
    def active_queries(self) -> list[tuple[int, str]]:
        """(index, text) pairs the runner should execute."""
        if self.spec.query_index is None:
            return list(enumerate(self.queries))
        index = self.spec.query_index % len(self.queries)
        return [(index, self.queries[index])]


def spec_for_iteration(seed: int, iteration: int) -> CaseSpec:
    """The spec the fuzz session runs at ``iteration`` (deterministic)."""
    rng = random.Random(f"partix-fuzz:{seed}:{iteration}")
    family = FAMILIES[iteration % len(FAMILIES)]
    if family == "store":
        # doc_count counts *units* (items inside the single Store document)
        doc_count = rng.randint(3, 12)
    else:
        doc_count = rng.randint(3, 10)
    return CaseSpec(
        seed=rng.randrange(1 << 31),
        family=family,
        doc_count=doc_count,
        fragment_count=rng.randint(2, 4),
        frag_mode=rng.choice((1, 2)),
        query_count=5,
    )


def generate_case(spec: CaseSpec) -> GeneratedCase:
    """Materialize ``spec`` into documents, a design and query texts."""
    if spec.family == "items":
        case = _generate_items(spec)
    elif spec.family == "articles":
        case = _generate_articles(spec)
    else:
        case = _generate_store(spec)
    case.queries = [_finalize_query(spec, text) for text in case.queries]
    return case


# ----------------------------------------------------------------------
# Query AST helpers
# ----------------------------------------------------------------------
def _coll(collection: str, *labels: str, descendant_first: bool = False) -> PathApply:
    """``collection("name")/a/b`` (optionally ``//a/b``)."""
    steps = []
    for index, label in enumerate(labels):
        axis = "descendant-or-self" if descendant_first and index == 0 else "child"
        steps.append(AxisStep(axis, label))
    return PathApply(
        FunctionCall("collection", (Literal(collection),)), tuple(steps)
    )


def _var_path(name: str, *labels: str, text: bool = False) -> PathApply:
    steps = [AxisStep("child", label) for label in labels]
    if text:
        steps.append(AxisStep("child", "text()", is_text=True))
    return PathApply(VarRef(name), tuple(steps))


def _flwor(var: str, seq: Expr, where: Optional[Expr], ret: Expr) -> FLWOR:
    return FLWOR((ForClause(var, seq),), where, (), ret)


def _and(left: Expr, right: Expr) -> Expr:
    return BinaryOp("and", left, right)


def _or(left: Expr, right: Expr) -> Expr:
    return BinaryOp("or", left, right)


def _emit(ast: Expr) -> str:
    """Unparse + assert the parse round-trip (the invariant the
    decomposer's AST-to-text shipping relies on)."""
    text = unparse(ast)
    reparsed = parse_query(text)
    if reparsed != ast:
        raise GenerationError(
            f"unparse round-trip broken for generated query:\n  text: {text}"
            f"\n  ast: {ast!r}\n  reparsed: {reparsed!r}"
        )
    return text


def _finalize_query(spec: CaseSpec, text: str) -> str:
    """Apply minimizer simplification knobs to a generated query."""
    if not spec.strip_where and not spec.simple_return:
        return text
    ast = parse_query(text)
    ast = _simplify(ast, spec.strip_where, spec.simple_return)
    return _emit(ast)


def _simplify(ast: Expr, strip_where: bool, simple_return: bool) -> Expr:
    if isinstance(ast, FunctionCall):
        return FunctionCall(
            ast.name,
            tuple(_simplify(a, strip_where, simple_return) for a in ast.args),
        )
    if isinstance(ast, FLWOR):
        where = None if strip_where else ast.where
        ret = ast.return_expr
        if simple_return:
            first = ast.clauses[0]
            if isinstance(first, ForClause):
                ret = Literal(1)
        return FLWOR(ast.clauses, where, ast.order_by, ret)
    return ast


# ----------------------------------------------------------------------
# Shared predicate / section-partition generation
# ----------------------------------------------------------------------
def _partition_sections(
    rng: random.Random, sections: tuple[str, ...], fragment_count: int
) -> list[tuple[str, ...]]:
    """A random partition of ``sections`` into ``fragment_count`` groups."""
    count = max(2, min(fragment_count, len(sections)))
    shuffled = list(sections)
    rng.shuffle(shuffled)
    groups: list[list[str]] = [[] for _ in range(count)]
    for index, section in enumerate(shuffled):
        groups[index % count].append(section)
    return [tuple(group) for group in groups]


def _group_predicate(
    group: tuple[str, ...],
    sections: tuple[str, ...],
    residual: bool,
    root: str = "Item",
) -> Predicate:
    """Equality disjunction, or the ≠-residual making coverage total."""
    path = f"/{root}/Section"
    if residual:
        others = [s for s in sections if s not in group]
        parts = tuple(ne(path, section) for section in others)
        return parts[0] if len(parts) == 1 else And(parts)
    parts = tuple(eq(path, section) for section in group)
    return parts[0] if len(parts) == 1 else Or(parts)


def _item_where(rng: random.Random, var: str, sections: tuple[str, ...]) -> Expr:
    """A random filter over an Item-shaped element bound to ``$var``."""

    def atom() -> Expr:
        kind = rng.choice(("section", "release", "contains", "price"))
        if kind == "section":
            # Occasionally probe a section no document carries — the
            # empty-answer / all-fragments-pruned edge.
            value = rng.choice(sections + ("Antiques",))
            op = rng.choice(("=", "!="))
            return BinaryOp(op, _var_path(var, "Section"), Literal(value))
        if kind == "release":
            op = rng.choice((">=", "<", "<="))
            date = f"200{rng.randint(0, 5)}-0{rng.randint(1, 9)}-15"
            return BinaryOp(op, _var_path(var, "Release"), Literal(date))
        if kind == "price":
            op = rng.choice((">=", "<"))
            return BinaryOp(op, _var_path(var, "Price"), Literal(rng.randint(50, 450)))
        term = rng.choice(TEXT_TERMS + ("absent-term",))
        return FunctionCall(
            "contains", (_var_path(var, "Description"), Literal(term))
        )

    shape = rng.random()
    if shape < 0.5:
        return atom()
    if shape < 0.8:
        return _and(atom(), atom())
    return _or(atom(), atom())


# ----------------------------------------------------------------------
# items family — MD repository, horizontal designs
# ----------------------------------------------------------------------
def _item_template(rng: random.Random, sections: tuple[str, ...]) -> NodeTemplate:
    children = [
        child(NodeTemplate("Code", value=Counter("I-{:04d}"))),
        child(NodeTemplate("Name", value=Words(2, 3))),
        child(
            NodeTemplate(
                "Description",
                value=Words(4, 10, inject=(rng.choice(TEXT_TERMS), 0.5)),
            )
        ),
        child(NodeTemplate("Section", value=Choice(sections))),
        child(NodeTemplate("Release", value=DateRange(2000, 2005))),
        # Integer prices keep distributed sums exact (float partial sums
        # would make byte-comparison order-sensitive).
        child(NodeTemplate("Price", value=IntRange(1, 500))),
    ]
    if rng.random() < 0.5:
        children.append(
            child(
                NodeTemplate(
                    "PictureList",
                    children=[child(NodeTemplate("Picture", value=Words(1, 2)), 1, 2)],
                ),
                min_occurs=0,
                max_occurs=1,
            )
        )
    return NodeTemplate("Item", children=children)


def _generate_items(spec: CaseSpec) -> GeneratedCase:
    data_rng = random.Random(f"data:{spec.seed}")
    design_rng = random.Random(f"design:{spec.seed}")
    section_count = data_rng.randint(2, len(SECTION_POOL))
    sections = tuple(data_rng.sample(SECTION_POOL, section_count))
    template = _item_template(data_rng, sections)
    generator = ToXgene(seed=spec.seed)
    documents = generator.generate_documents(
        template, spec.doc_count, name_fmt="item-{:05d}.xml"
    )
    collection = Collection(
        "Cfuzz", documents, kind=RepositoryKind.MULTIPLE_DOCUMENTS
    )
    groups = _partition_sections(design_rng, sections, spec.fragment_count)
    fragments = [
        HorizontalFragment(
            f"F{index + 1}",
            "Cfuzz",
            predicate=_group_predicate(
                group, sections, residual=(index == len(groups) - 1)
            ),
        )
        for index, group in enumerate(groups)
    ]
    design = FragmentationSchema("Cfuzz", fragments, root_label="Item")
    queries = _items_queries(spec, sections)
    return GeneratedCase(
        spec=spec,
        collection=collection,
        design=design,
        queries=queries,
        frag_mode=FragMode.SINGLE_DOCUMENT,
    )


def _items_queries(spec: CaseSpec, sections: tuple[str, ...]) -> list[str]:
    queries = []
    for index in range(spec.query_count):
        rng = random.Random(f"query:{spec.seed}:{index}")
        queries.append(_emit(_one_items_query(rng, sections)))
    return queries


def _one_items_query(rng: random.Random, sections: tuple[str, ...]) -> Expr:
    recipe = rng.choice(
        ("value", "value", "constructor", "step-predicate", "count", "sum")
    )
    binding = _coll("Cfuzz", "Item", descendant_first=rng.random() < 0.2)
    where = _item_where(rng, "i", sections) if rng.random() < 0.85 else None
    if recipe == "step-predicate":
        # Path-step predicate instead of a where clause:
        #   collection("Cfuzz")/Item[Section = "CD"]/Name/text()
        section = rng.choice(sections)
        step = AxisStep(
            "child",
            "Item",
            predicates=(
                BinaryOp(
                    "=",
                    PathApply(ContextItem(), (AxisStep("child", "Section"),)),
                    Literal(section),
                ),
            ),
        )
        return PathApply(
            FunctionCall("collection", (Literal("Cfuzz"),)),
            (step, AxisStep("child", "Name"), AxisStep("child", "text()", is_text=True)),
        )
    if recipe == "count":
        return FunctionCall(
            "count", (_flwor("i", binding, where, VarRef("i")),)
        )
    if recipe == "sum":
        return FunctionCall(
            "sum", (_flwor("i", binding, where, _var_path("i", "Price")),)
        )
    if recipe == "constructor":
        ret: Expr = ElementConstructor(
            "hit", (_var_path("i", "Code", text=True),)
        )
    else:
        ret = rng.choice(
            (
                _var_path("i", "Name", text=True),
                _var_path("i", "Code", text=True),
                VarRef("i"),
            )
        )
    return _flwor("i", binding, where, ret)


# ----------------------------------------------------------------------
# articles family — MD repository, vertical designs
# ----------------------------------------------------------------------
def _article_template(rng: random.Random) -> NodeTemplate:
    section = NodeTemplate(
        "section",
        children=[
            child(NodeTemplate("title", value=Words(2, 4))),
            child(
                NodeTemplate("p", value=Words(5, 12, inject=("remarkable", 0.4))),
                1,
                2,
            ),
        ],
    )
    return NodeTemplate(
        "article",
        children=[
            child(
                NodeTemplate(
                    "prolog",
                    children=[
                        child(NodeTemplate("title", value=Words(3, 6, inject=("frontier", 0.4)))),
                        child(NodeTemplate("genre", value=Choice(GENRES))),
                        child(
                            NodeTemplate(
                                "authors",
                                children=[
                                    child(NodeTemplate("author", value=Words(2, 2)), 1, 2)
                                ],
                            )
                        ),
                        child(NodeTemplate("date", value=DateRange(2000, 2005))),
                    ],
                )
            ),
            child(
                NodeTemplate(
                    "body",
                    children=[
                        child(NodeTemplate("abstract", value=Words(6, 14, inject=("novel", 0.45)))),
                        child(section, 1, rng.randint(1, 3)),
                    ],
                )
            ),
            child(
                NodeTemplate(
                    "epilog",
                    children=[
                        child(
                            NodeTemplate(
                                "references",
                                children=[child(NodeTemplate("a_id", value=Counter("r-{:04d}")), 1, 4)],
                            )
                        ),
                        child(NodeTemplate("country", value=Choice(COUNTRIES))),
                    ],
                )
            ),
        ],
    )


def _generate_articles(spec: CaseSpec) -> GeneratedCase:
    data_rng = random.Random(f"data:{spec.seed}")
    design_rng = random.Random(f"design:{spec.seed}")
    template = _article_template(data_rng)
    generator = ToXgene(seed=spec.seed)
    documents = generator.generate_documents(
        template, spec.doc_count, name_fmt="article-{:05d}.xml"
    )
    collection = Collection(
        "Cfuzz", documents, kind=RepositoryKind.MULTIPLE_DOCUMENTS
    )
    if spec.fragment_count >= 3 or design_rng.random() < 0.5:
        fragments = [
            VerticalFragment("F1", "Cfuzz", path="/article/prolog"),
            VerticalFragment("F2", "Cfuzz", path="/article/body"),
            VerticalFragment("F3", "Cfuzz", path="/article/epilog"),
        ]
        note = "vertical 3-way prolog/body/epilog"
    else:
        pruned = design_rng.choice(("/article/body", "/article/epilog"))
        fragments = [
            VerticalFragment("F1", "Cfuzz", path="/article", prune=(pruned,)),
            VerticalFragment("F2", "Cfuzz", path=pruned),
        ]
        note = f"vertical prune-complement on {pruned}"
    design = FragmentationSchema("Cfuzz", fragments, root_label="article")
    queries = []
    for index in range(spec.query_count):
        rng = random.Random(f"query:{spec.seed}:{index}")
        queries.append(_emit(_one_article_query(rng)))
    return GeneratedCase(
        spec=spec,
        collection=collection,
        design=design,
        queries=queries,
        frag_mode=FragMode.SINGLE_DOCUMENT,
        notes=[note],
    )


def _one_article_query(rng: random.Random) -> Expr:
    binding = _coll("Cfuzz", "article")
    recipe = rng.choice(
        (
            "single-prolog",
            "single-body",
            "cross-body-prolog",
            "cross-prolog-epilog",
            "count-genre",
            "sections",
        )
    )
    if recipe == "single-prolog":
        where: Optional[Expr] = FunctionCall(
            "contains", (_var_path("a", "prolog", "title"), Literal("frontier"))
        )
        ret: Expr = _var_path("a", "prolog", "title", text=True)
    elif recipe == "single-body":
        where = FunctionCall(
            "contains", (_var_path("a", "body", "abstract"), Literal("novel"))
        )
        ret = _var_path("a", "body", "abstract", text=True)
    elif recipe == "cross-body-prolog":
        # Filters on body, returns from prolog: needs the ID-join.
        where = FunctionCall(
            "contains",
            (_var_path("a", "body", "abstract"), Literal(rng.choice(("novel", "absent")))),
        )
        ret = _var_path("a", "prolog", "title", text=True)
    elif recipe == "cross-prolog-epilog":
        where = _and(
            BinaryOp("=", _var_path("a", "prolog", "genre"), Literal(rng.choice(GENRES))),
            BinaryOp("=", _var_path("a", "epilog", "country"), Literal(rng.choice(COUNTRIES))),
        )
        ret = _var_path("a", "prolog", "title", text=True)
    elif recipe == "count-genre":
        where = BinaryOp(
            "=", _var_path("a", "prolog", "genre"), Literal(rng.choice(GENRES))
        )
        return FunctionCall("count", (_flwor("a", binding, where, VarRef("a")),))
    else:  # sections — iterate deeper than the fragment root
        binding = _coll("Cfuzz", "article", "body", "section")
        where = FunctionCall(
            "contains", (_var_path("s", "p"), Literal("remarkable"))
        )
        return _flwor("s", binding, where, _var_path("s", "title", text=True))
    if rng.random() < 0.2:
        ret = ElementConstructor("hit", (ret,))
    return _flwor("a", binding, where, ret)


# ----------------------------------------------------------------------
# store family — SD repository, hybrid designs
# ----------------------------------------------------------------------
def _generate_store(spec: CaseSpec) -> GeneratedCase:
    data_rng = random.Random(f"data:{spec.seed}")
    design_rng = random.Random(f"design:{spec.seed}")
    section_count = data_rng.randint(2, 5)
    sections = tuple(data_rng.sample(SECTION_POOL, section_count))
    store = NodeTemplate(
        "Store",
        children=[
            child(
                NodeTemplate(
                    "Sections",
                    children=[
                        child(
                            NodeTemplate(
                                "SectionEntry",
                                children=[
                                    child(NodeTemplate("Code", value=Counter("S-{:02d}"))),
                                    child(NodeTemplate("Name", value=Words(1, 2))),
                                ],
                            ),
                            len(sections),
                        )
                    ],
                )
            ),
            child(
                NodeTemplate(
                    "Items",
                    children=[child(_item_template(data_rng, sections), spec.doc_count)],
                )
            ),
            child(
                NodeTemplate(
                    "Employees",
                    children=[
                        child(
                            NodeTemplate(
                                "Employee",
                                children=[
                                    child(NodeTemplate("Code", value=Counter("E-{:02d}"))),
                                    child(NodeTemplate("Name", value=Words(2, 2))),
                                ],
                            ),
                            data_rng.randint(1, 3),
                        )
                    ],
                )
            ),
        ],
    )
    generator = ToXgene(seed=spec.seed)
    document = generator.generate_document(store, name="store.xml")
    collection = Collection(
        "Cfuzz", [document], kind=RepositoryKind.SINGLE_DOCUMENT
    )
    groups = _partition_sections(design_rng, sections, spec.fragment_count)
    fragments: list = [
        VerticalFragment(
            "F1", "Cfuzz", path="/Store", prune=("/Store/Items",), stub_prunes=True
        )
    ]
    for index, group in enumerate(groups):
        fragments.append(
            HybridFragment(
                f"F{index + 2}",
                "Cfuzz",
                path="/Store/Items",
                unit_label="Item",
                predicate=_group_predicate(
                    group, sections, residual=(index == len(groups) - 1)
                ),
            )
        )
    design = FragmentationSchema("Cfuzz", fragments, root_label="Store")
    queries = []
    for index in range(spec.query_count):
        rng = random.Random(f"query:{spec.seed}:{index}")
        queries.append(_emit(_one_store_query(rng, sections)))
    return GeneratedCase(
        spec=spec,
        collection=collection,
        design=design,
        queries=queries,
        frag_mode=FragMode(spec.frag_mode),
        notes=[f"hybrid FragMode{spec.frag_mode}, {len(groups)} unit groups"],
    )


def _one_store_query(rng: random.Random, sections: tuple[str, ...]) -> Expr:
    recipe = rng.choice(
        ("unit-value", "unit-value", "unit-count", "remainder", "chain")
    )
    items = _coll("Cfuzz", "Store", "Items", "Item")
    if recipe == "unit-value":
        where = _item_where(rng, "i", sections) if rng.random() < 0.9 else None
        ret = rng.choice(
            (
                _var_path("i", "Name", text=True),
                _var_path("i", "Code", text=True),
                VarRef("i"),
            )
        )
        return _flwor("i", items, where, ret)
    if recipe == "unit-count":
        where = _item_where(rng, "i", sections)
        return FunctionCall("count", (_flwor("i", items, where, VarRef("i")),))
    if recipe == "remainder":
        region, label = rng.choice(
            (("Employees", "Employee"), ("Sections", "SectionEntry"))
        )
        binding = _coll("Cfuzz", "Store", region, label)
        return _flwor("e", binding, None, _var_path("e", "Name", text=True))
    # chain — iterate over the Store root itself: per-document semantics
    # that force the reconstruction fallback (units + remainder).
    binding = _coll("Cfuzz", "Store")
    ret = FunctionCall("count", (_var_path("s", "Items", "Item"),))
    return _flwor("s", binding, None, ret)


def shrink_candidates(spec: CaseSpec) -> list[CaseSpec]:
    """Greedy shrink moves, most aggressive first (used by the minimizer)."""
    candidates: list[CaseSpec] = []
    if spec.doc_count > 1:
        candidates.append(replace(spec, doc_count=max(1, spec.doc_count // 2)))
        candidates.append(replace(spec, doc_count=spec.doc_count - 1))
    if spec.fragment_count > 2:
        candidates.append(replace(spec, fragment_count=2))
        candidates.append(replace(spec, fragment_count=spec.fragment_count - 1))
    if not spec.strip_where:
        candidates.append(replace(spec, strip_where=True))
    if not spec.simple_return:
        candidates.append(replace(spec, simple_return=True))
    return candidates
