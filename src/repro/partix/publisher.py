"""Distributed XML Data Publisher (paper §4).

"The Distributed XML Data Publisher receives XML documents from users,
applies the fragmentation that was previously defined to the collections,
and sends the resulting fragments to be stored in the remote DBMS nodes."

Besides applying the fragment operators, the publisher decides the
*materialization* of hybrid fragments, which §5 showed matters enormously:

* **FragMode1** — "for each Item node selected, generate an independent
  document and store it". Many tiny documents; the query processor then
  parses hundreds of small documents per query, "which is slower than
  parsing a huge document a single time".
* **FragMode2** — "a single document (SD), exactly like the original
  document, but with only the item elements obtained by the selection
  operator": the original root chain is kept, with only the selected units
  under the region node.

Fragment documents carry a ``pxorigin`` annotation naming their source
document — the join key §3.3 requires, made to survive any serialization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.algebra.annotations import PXID, PXORIGIN, PXPARENT, annotate
from repro.datamodel.collection import Collection
from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import XMLNode
from repro.errors import CatalogError, FragmentationError
from repro.partix.catalog import DistributionCatalog, FragmentAllocation
from repro.partix.correctness import verify_fragmentation
from repro.partix.fragments import (
    FragmentDefinition,
    FragmentationSchema,
    HorizontalFragment,
    HybridFragment,
    VerticalFragment,
)
from repro.paths.evaluator import evaluate_path

# Cluster import is type-only to keep layering acyclic at runtime.
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.site import Cluster


class FragMode(enum.Enum):
    """Materialization of hybrid fragments (paper §5, StoreHyb)."""

    INDEPENDENT_DOCUMENTS = 1  # FragMode1
    SINGLE_DOCUMENT = 2  # FragMode2


@dataclass
class FragmentPublication:
    """What one fragment's publication produced."""

    fragment: str
    site: str
    stored_collection: str
    documents: int = 0
    bytes: int = 0


@dataclass
class PublicationReport:
    """Summary of publishing one collection."""

    collection: str
    fragments: list[FragmentPublication] = field(default_factory=list)

    @property
    def total_documents(self) -> int:
        return sum(f.documents for f in self.fragments)

    @property
    def total_bytes(self) -> int:
        return sum(f.bytes for f in self.fragments)


class DataPublisher:
    """Applies a fragmentation design and distributes the fragments."""

    def __init__(self, cluster: "Cluster", catalog: Optional[DistributionCatalog] = None):
        self.cluster = cluster
        self.catalog = catalog if catalog is not None else DistributionCatalog()

    # ------------------------------------------------------------------
    def publish(
        self,
        collection: Collection,
        fragmentation: FragmentationSchema,
        allocations: Optional[Sequence[FragmentAllocation]] = None,
        frag_mode: FragMode = FragMode.SINGLE_DOCUMENT,
        verify: bool = False,
        require_homogeneous: bool = True,
        replace: bool = False,
    ) -> PublicationReport:
        """Fragment ``collection`` and store the pieces across the cluster.

        Without explicit ``allocations``, fragments are assigned
        round-robin over the cluster's sites, each into a physical
        collection named after the fragment. With ``verify``, the §3.3
        correctness rules are checked first (raising on violation).
        ``require_homogeneous`` enforces §3.2's precondition that MD
        fragmentation applies to homogeneous collections only (pass False
        for collections that are intentionally untyped).

        ``replace=True`` republishes over an existing design: the new
        fragments are validated and fully stored to their sites *first*,
        and only then is the catalog registration swapped — queries
        planned concurrently keep seeing (and finding the data of) the
        old design until the new one is complete, then the catalog
        version bump invalidates cached plans.
        """
        if require_homogeneous and not collection.is_homogeneous():
            raise FragmentationError(
                f"collection {collection.name!r} is not homogeneous;"
                " fragmentation of MD repositories requires a homogeneous"
                " collection (§3.2)"
            )
        if verify:
            verify_fragmentation(fragmentation, collection).raise_if_invalid()
        if allocations is None:
            site_names = self.cluster.site_names()
            if not site_names:
                raise FragmentationError("cluster has no sites to publish to")
            allocations = [
                FragmentAllocation(
                    fragment=fragment.name,
                    site=site_names[index % len(site_names)],
                    stored_collection=fragment.name,
                )
                for index, fragment in enumerate(fragmentation.fragments)
            ]
        # Record the actual hybrid materialization in the catalog entries.
        allocations = [
            FragmentAllocation(
                fragment=a.fragment,
                site=a.site,
                stored_collection=a.stored_collection,
                hybrid_mode=frag_mode.value,
            )
            for a in allocations
        ]
        if not replace and self.catalog.is_fragmented(collection.name):
            raise CatalogError(
                f"collection {collection.name!r} already has a fragmentation"
            )
        # Validate the allocation set *before* any data moves, then store
        # every fragment, then swap the registration in — a failed or
        # in-progress (re)publish never leaves the catalog pointing at
        # sites that do not hold the data yet.
        self.catalog.validate_allocations(fragmentation, allocations)
        report = PublicationReport(collection=collection.name)
        for allocation in allocations:
            fragment = fragmentation.fragment(allocation.fragment)
            publication = self._publish_fragment(
                collection, fragment, allocation, frag_mode
            )
            report.fragments.append(publication)
        self.catalog.register_fragmentation(
            fragmentation, allocations, replace=replace
        )
        return report

    def publish_centralized(
        self,
        collection: Collection,
        site_name: str,
        stored_collection: Optional[str] = None,
    ) -> FragmentPublication:
        """Store the whole collection at one site (the baseline setup)."""
        site = self.cluster.site(site_name)
        target = stored_collection or collection.name
        site.driver.create_collection(target)
        publication = FragmentPublication(
            fragment="(centralized)", site=site_name, stored_collection=target
        )
        for document in collection:
            site.driver.store_document(
                target, document, name=document.name, origin=document.origin
            )
            publication.documents += 1
        publication.bytes = site.driver.collection_bytes(target)
        return publication

    # ------------------------------------------------------------------
    def _publish_fragment(
        self,
        collection: Collection,
        fragment: FragmentDefinition,
        allocation: FragmentAllocation,
        frag_mode: FragMode,
    ) -> FragmentPublication:
        site = self.cluster.site(allocation.site)
        site.driver.create_collection(allocation.stored_collection)
        publication = FragmentPublication(
            fragment=fragment.name,
            site=allocation.site,
            stored_collection=allocation.stored_collection,
        )
        for document in collection:
            for produced in self._materialize(fragment, document, frag_mode):
                site.driver.store_document(
                    allocation.stored_collection,
                    produced,
                    name=produced.name,
                    origin=produced.origin,
                )
                publication.documents += 1
        documents, stored_bytes = site.driver.collection_statistics(
            allocation.stored_collection
        )
        publication.bytes = stored_bytes
        # Planner statistics: the cost model estimates per-lane work from
        # these, so EXPLAIN never has to probe a site.
        self.catalog.record_statistics(
            collection.name,
            fragment.name,
            allocation.site,
            documents=documents,
            data_bytes=stored_bytes,
        )
        return publication

    def _materialize(
        self,
        fragment: FragmentDefinition,
        document: XMLDocument,
        frag_mode: FragMode,
    ) -> list[XMLDocument]:
        if isinstance(fragment, HorizontalFragment):
            return fragment.operator().apply(document)
        if isinstance(fragment, VerticalFragment):
            produced = fragment.operator().apply(document)
            for part in produced:
                annotate(part.root, PXORIGIN, part.origin or part.name or "")
            return produced
        assert isinstance(fragment, HybridFragment)
        if frag_mode is FragMode.INDEPENDENT_DOCUMENTS:
            produced = fragment.operator().apply(document)
            for part in produced:
                annotate(part.root, PXORIGIN, part.origin or part.name or "")
            return produced
        single = self._materialize_single_document(fragment, document)
        return [single] if single is not None else []

    def _materialize_single_document(
        self, fragment: HybridFragment, document: XMLDocument
    ) -> Optional[XMLDocument]:
        """FragMode2: one document shaped like the original, units filtered."""
        regions = evaluate_path(fragment.path, document)
        if not regions:
            return None
        if len(regions) > 1:
            raise FragmentationError(
                f"hybrid fragment {fragment.name!r}: region path"
                f" {fragment.path} selected {len(regions)} nodes"
            )
        region = regions[0]
        # Rebuild the chain from the document root down to the region,
        # keeping only the spine (other children belong to the remainder
        # fragment) — then attach the selected units.
        chain = [region]
        chain.extend(region.ancestors())
        chain.reverse()  # root first
        clones: list[XMLNode] = []
        for original in chain:
            clone = XMLNode(original.kind, label=original.label, value=original.value)
            clone.node_id = original.node_id
            annotate(clone, PXID, original.node_id)
            if clones:
                clones[-1].append(clone)
            clones.append(clone)
        region_clone = clones[-1]
        pruned_ids = {
            node.node_id
            for expr in fragment.prune
            for node in evaluate_path(expr, document)
        }
        for unit in region.child_elements(fragment.unit_label):
            if fragment.predicate is not None and not fragment.predicate.evaluate(unit):
                continue
            if pruned_ids:
                unit_clone = unit.clone_pruned(lambda n: n.node_id in pruned_ids)
            else:
                unit_clone = unit.clone(deep=True)
            annotate(unit_clone, PXID, unit.node_id)
            annotate(unit_clone, PXPARENT, region.node_id)
            region_clone.append(unit_clone)
        root_clone = clones[0]
        annotate(root_clone, PXORIGIN, document.origin or document.name or "")
        return XMLDocument(
            root_clone,
            name=document.name,
            assign_ids=False,
            origin=document.origin,
        )
