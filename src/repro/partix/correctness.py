"""Correctness rules of a fragmentation design (paper §3.3).

Three rules must hold for a fragmentation Φ = {F1..Fn} of collection C:

* **Completeness** — every data item of C appears in some Fi. The data
  item is a *document* for horizontal fragmentation and a *node* for
  vertical/hybrid fragmentation.
* **Disjointness** — no data item appears in two fragments.
* **Reconstruction** — an operator ∇ rebuilds C from Φ: union for
  horizontal fragments, the ID-join for vertical ones.

Checks come in two flavours:

* *symbolic* — reason over the fragment definitions alone (complement
  pairs, equality families, pairwise predicate unsatisfiability, prune/
  path coverage). Sound but incomplete: a "cannot show" outcome is not a
  violation.
* *empirical* — evaluate the definitions over an actual collection and
  compare data-item sets, then actually reconstruct and compare trees.
  This is the ground truth the benchmarks run before measuring.

Two relaxations reflect designs the paper itself uses: a vertical design
may leave the source *root* uncovered (XBench's prolog/body/epilog — the
root is implied by ⟨S, τroot⟩), and a hybrid design may leave *structural
chain* nodes (e.g. the ``Items`` container) uncovered. Both are reported
as notes, not violations, unless ``strict_nodes`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.join import reconstruct_one
from repro.algebra.union import union_documents
from repro.datamodel.collection import Collection
from repro.datamodel.document import XMLDocument
from repro.errors import CorrectnessViolation
from repro.partix.fragments import (
    FragmentationSchema,
    HorizontalFragment,
    HybridFragment,
    VerticalFragment,
)
from repro.paths.predicates import covers_all, definitely_disjoint


@dataclass
class CorrectnessReport:
    """Outcome of verifying one fragmentation against one collection."""

    complete: bool = True
    disjoint: bool = True
    reconstructible: bool = True
    violations: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.complete and self.disjoint and self.reconstructible

    def add_violation(self, rule: str, message: str) -> None:
        self.violations.append(f"{rule}: {message}")
        if rule == "completeness":
            self.complete = False
        elif rule == "disjointness":
            self.disjoint = False
        else:
            self.reconstructible = False

    def raise_if_invalid(self) -> None:
        if not self.ok:
            first = self.violations[0]
            rule, _, details = first.partition(": ")
            raise CorrectnessViolation(rule, details or first)


# ----------------------------------------------------------------------
# Symbolic checks
# ----------------------------------------------------------------------
def symbolic_report(schema: FragmentationSchema) -> CorrectnessReport:
    """What can be said about Φ from the definitions alone."""
    report = CorrectnessReport()
    horizontals = schema.horizontal_fragments()
    if horizontals and len(horizontals) == len(schema):
        predicates = [f.predicate for f in horizontals]
        if not covers_all(predicates):
            report.notes.append(
                "completeness not syntactically provable; run the empirical"
                " check against the collection"
            )
        for i, p in enumerate(predicates):
            for q in predicates[i + 1 :]:
                if not definitely_disjoint(p, q):
                    report.notes.append(
                        f"disjointness of ({p}) and ({q}) not syntactically"
                        " provable"
                    )
    verticals = schema.vertical_fragments()
    for i, a in enumerate(verticals):
        for b in verticals[i + 1 :]:
            if _vertical_may_overlap(a, b):
                report.notes.append(
                    f"vertical fragments {a.name!r} and {b.name!r} may"
                    " overlap (paths nest without a matching prune)"
                )
    return report


def _vertical_may_overlap(a: VerticalFragment, b: VerticalFragment) -> bool:
    """Could two projections share nodes? (prunes can restore disjointness)."""
    for outer, inner in ((a, b), (b, a)):
        if outer.path.is_prefix_of(inner.path):
            # inner's region sits inside outer's; outer must prune it away.
            pruned = any(
                str(p) == str(inner.path) or p.is_prefix_of(inner.path)
                for p in outer.prune
            )
            if not pruned:
                return True
    return False


# ----------------------------------------------------------------------
# Empirical checks
# ----------------------------------------------------------------------
def verify_fragmentation(
    schema: FragmentationSchema,
    collection: Collection,
    strict_nodes: bool = False,
    check_reconstruction: bool = True,
) -> CorrectnessReport:
    """Evaluate all three rules of §3.3 over an actual collection."""
    report = CorrectnessReport()
    if schema.is_horizontal:
        _check_horizontal(schema, collection, report)
        if check_reconstruction:
            _check_horizontal_reconstruction(schema, collection, report)
    else:
        _check_node_level(schema, collection, report, strict_nodes)
        if check_reconstruction:
            _check_node_level_reconstruction(schema, collection, report)
    return report


def _check_horizontal(
    schema: FragmentationSchema, collection: Collection, report: CorrectnessReport
) -> None:
    fragments = schema.horizontal_fragments()
    for document in collection:
        matches = [
            f.name for f in fragments if f.predicate.evaluate(document)
        ]
        if not matches:
            report.add_violation(
                "completeness",
                f"document {document.name!r} satisfies no fragment predicate",
            )
        elif len(matches) > 1:
            report.add_violation(
                "disjointness",
                f"document {document.name!r} satisfies fragments"
                f" {', '.join(matches)}",
            )


def _check_horizontal_reconstruction(
    schema: FragmentationSchema, collection: Collection, report: CorrectnessReport
) -> None:
    if not report.complete or not report.disjoint:
        report.reconstructible = False
        return
    groups = [
        fragment.operator().apply_collection(collection)
        for fragment in schema.fragments
    ]
    try:
        merged = union_documents(groups)
    except CorrectnessViolation as exc:
        report.add_violation("reconstruction", str(exc))
        return
    originals = {d.name: d for d in collection}
    if set(d.name for d in merged) != set(originals):
        report.add_violation(
            "reconstruction", "union does not yield the original document set"
        )
        return
    for document in merged:
        if not document.tree_equal(originals[document.name]):
            report.add_violation(
                "reconstruction",
                f"document {document.name!r} differs after union",
            )
            return


def _materialized_ids(
    schema: FragmentationSchema, document: XMLDocument
) -> dict[str, set[int]]:
    """Per fragment, the ids of the source nodes it covers in ``document``.

    Annotation attributes added by the operators carry fresh negative ids
    and are excluded by intersecting with the source id set.
    """
    original_ids = {node.node_id for node in document.nodes()}
    covered: dict[str, set[int]] = {}
    for fragment in schema.fragments:
        ids: set[int] = set()
        for produced in fragment.operator().apply(document):
            ids.update(
                node.node_id
                for node in produced.nodes()
                if node.node_id in original_ids
            )
        covered[fragment.name] = ids
    return covered


def _check_node_level(
    schema: FragmentationSchema,
    collection: Collection,
    report: CorrectnessReport,
    strict_nodes: bool,
) -> None:
    for document in collection:
        covered = _materialized_ids(schema, document)
        seen: dict[int, str] = {}
        for fragment_name, ids in covered.items():
            for node_id in ids:
                if node_id in seen and seen[node_id] != fragment_name:
                    node = document.find_by_id(node_id)
                    label = node.label if node is not None else node_id
                    report.add_violation(
                        "disjointness",
                        f"node {label!r} (id {node_id}) of"
                        f" {document.name!r} is in fragments"
                        f" {seen[node_id]!r} and {fragment_name!r}",
                    )
                    return
                seen[node_id] = fragment_name
        all_covered = set(seen)
        missing = {
            node.node_id for node in document.nodes()
        } - all_covered
        if missing:
            structural = _structural_chain_ids(document, all_covered)
            hard_missing = missing - structural
            if hard_missing:
                node = document.find_by_id(min(hard_missing))
                label = node.label if node is not None else "?"
                report.add_violation(
                    "completeness",
                    f"node {label!r} (id {min(hard_missing)}) of"
                    f" {document.name!r} is in no fragment",
                )
            elif strict_nodes:
                report.add_violation(
                    "completeness",
                    f"structural chain nodes of {document.name!r} are in no"
                    f" fragment (ids {sorted(missing)[:5]}...)",
                )
            else:
                report.notes.append(
                    f"{document.name!r}: {len(missing)} structural chain"
                    " node(s) uncovered (root/containers implied by the"
                    " collection type)"
                )


def _structural_chain_ids(
    document: XMLDocument, covered: set[int]
) -> set[int]:
    """Nodes whose entire proper content is covered by fragments.

    A chain node (the root, a container like ``Items``) is tolerable
    because reconstruction re-synthesizes it from the collection type;
    a *leaf* or value node missing from every fragment is real data loss.
    """
    structural: set[int] = set()
    for node in document.nodes():
        if node.node_id in covered:
            continue
        if node.is_element and node.children:
            descendant_ids = {d.node_id for d in node.descendants()}
            uncovered_descendants = descendant_ids - covered
            # Allow nested uncovered chain nodes: every uncovered
            # descendant must itself be a container whose content is
            # covered — approximated by requiring all leaves covered.
            leaf_ids = {
                d.node_id for d in node.descendants() if not d.children
            }
            if leaf_ids and leaf_ids <= covered:
                structural.add(node.node_id)
            elif not leaf_ids:
                structural.add(node.node_id)
            else:
                del uncovered_descendants
    return structural


def _check_node_level_reconstruction(
    schema: FragmentationSchema, collection: Collection, report: CorrectnessReport
) -> None:
    if not report.complete or not report.disjoint:
        report.reconstructible = False
        return
    for document in collection:
        parts: list[XMLDocument] = []
        for fragment in schema.fragments:
            parts.extend(fragment.operator().apply(document))
        if not parts:
            report.add_violation(
                "reconstruction",
                f"document {document.name!r} produced no fragment parts",
            )
            return
        try:
            rebuilt = reconstruct_one(
                parts, root_label=schema.root_label, origin=document.name
            )
        except Exception as exc:  # noqa: BLE001 - reported as violation
            report.add_violation(
                "reconstruction",
                f"joining parts of {document.name!r} failed: {exc}",
            )
            return
        if not rebuilt.tree_equal(document):
            report.add_violation(
                "reconstruction",
                f"document {document.name!r} differs after ID-join",
            )
            return
