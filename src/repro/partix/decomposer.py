"""Query decomposition and data localization.

Given a query over the *global* collection and the fragmentation schema
from the distribution catalog, the decomposer emits one sub-query per
relevant fragment plus a composition specification (§3.3's "query
processing methodology similar to the relational model": map the global
query onto fragments via the reconstruction program, then localize).

Localization rules:

* **horizontal** — a fragment is pruned when its predicate μ is provably
  unsatisfiable together with the query's extracted selection predicate
  (``definitely_disjoint``). Sub-queries are the original query with the
  collection renamed to the fragment's stored collection.
* **vertical** — a fragment is relevant when a path the query touches may
  fall inside the fragment's projected region. A single-fragment query is
  rewritten (the fragment path's prefix is stripped, since fragment
  documents are rooted at the projected node); a multi-fragment query
  falls back to *fetch + ID-join + re-query* — the expensive
  reconstruction the paper blames for vertical slowdowns.
* **hybrid** — unit-region queries behave like horizontal over the unit
  fragments (with the query predicate re-rooted at the unit); FragMode1
  storage additionally needs the chain prefix stripped; queries spanning
  the remainder fall back to reconstruction.

Aggregates (``count``/``sum``/``min``/``max``/``avg``) are decomposed into
partial aggregates merged by the composer; ``avg`` ships as a
``(sum, count)`` pair.

The decomposer emits a *logical plan* (:mod:`repro.plan.logical`):
``FragmentScan`` leaves — one per relevant fragment, carrying one
candidate per replica — under the composition-shaped interior nodes
(``Union`` / ``MergeAggregate``+``PartialAggregate`` / ``IdJoin``).
:meth:`QueryDecomposer.decompose` lowers it to a
:class:`~repro.plan.physical.PhysicalPlan` with cost-based site/replica
selection; ``DecomposedQuery`` is kept as an alias of that class for the
pre-IR callers.

The paper's prototype shipped *annotated* sub-queries (locations supplied
by hand); :func:`annotated` builds the same structure for that mode.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import DecompositionError
from repro.partix.catalog import DistributionCatalog
from repro.plan.cost import CostModel
from repro.plan.logical import (
    Compose,
    FragmentScan,
    IndexScan,
    IdJoin,
    LogicalPlan,
    MergeAggregate,
    PartialAggregate,
    ScanCandidate,
)
from repro.plan.logical import Union as UnionNode
from repro.plan.lower import lower, lower_annotated
from repro.plan.physical import PhysicalPlan
from repro.plan.spec import CompositionSpec, SubQuery
from repro.partix.fragments import (
    FragmentationSchema,
    HorizontalFragment,
    HybridFragment,
    VerticalFragment,
)
from repro.paths.ast import Axis, PathExpr, Step
from repro.paths.predicates import (
    And,
    Comparison,
    Contains,
    Empty,
    Exists,
    Not,
    Or,
    Predicate,
    StartsWith,
    definitely_disjoint,
)
from repro.xquery.analysis import (
    QueryAnalysis,
    _neutralize_counted_returns,
    analyze_query,
)
from repro.xquery.ast_nodes import (
    AttributeConstructor,
    AxisStep,
    BinaryOp,
    ElementConstructor,
    Expr,
    FLWOR,
    FilterExpr,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    OrderSpec,
    PathApply,
    Quantified,
    RangeExpr,
    SequenceExpr,
    TextConstructor,
    UnaryOp,
    VarRef,
)
from repro.xquery.parser import parse_query
from repro.xquery.unparse import unparse

FETCH_ALL_TEMPLATE = 'for $d in collection("{name}") return $d'


# Compatibility alias: the decomposer's output used to be a bespoke
# ``DecomposedQuery`` record; it is now the physical plan itself (which
# keeps ``.subqueries`` / ``.fragment_names`` / ``.composition`` /
# ``.notes`` with the same meanings).
DecomposedQuery = PhysicalPlan


def annotated(
    collection: str,
    subqueries: list[SubQuery],
    composition: CompositionSpec,
) -> DecomposedQuery:
    """Build a hand-annotated decomposition (the paper's prototype mode)."""
    if not subqueries:
        raise DecompositionError("an annotated decomposition needs sub-queries")
    return lower_annotated(collection, list(subqueries), composition)


class QueryDecomposer:
    """Automatic decomposition against a distribution catalog.

    :meth:`decompose_logical` performs localization and emits the logical
    plan; :meth:`decompose` lowers it with the cost model (site/replica
    selection happens there, fed by the catalog's fragment statistics).
    """

    def __init__(
        self,
        catalog: DistributionCatalog,
        cost_model: Optional[CostModel] = None,
        site_health=None,
        use_indexes: bool = False,
    ):
        self.catalog = catalog
        self.cost_model = (
            cost_model if cost_model is not None else CostModel(catalog=catalog)
        )
        #: Optional shared :class:`~repro.cluster.health.SiteHealth`
        #: tracker: lowering avoids scan candidates at ejected sites.
        self.site_health = site_health
        #: When on, scans of predicated queries are emitted as
        #: :class:`IndexScan` leaves — *eligible* for index access;
        #: lowering still prices both paths. Off by default: the
        #: paper-faithful plans contain only full ``FragmentScan``s.
        self.use_indexes = use_indexes

    # ------------------------------------------------------------------
    def decompose(
        self, query: str, collection: Optional[str] = None
    ) -> DecomposedQuery:
        return lower(
            self.decompose_logical(query, collection),
            cost_model=self.cost_model,
            site_health=self.site_health,
        )

    def decompose_logical(
        self, query: str, collection: Optional[str] = None
    ) -> LogicalPlan:
        expr = parse_query(query)
        analysis = analyze_query(expr)
        collection = self._resolve_collection(analysis, collection)
        fragmentation = self.catalog.fragmentation(collection)
        kinds = fragmentation.kinds
        if kinds == {"horizontal"}:
            return self._decompose_horizontal(
                query, expr, analysis, collection, fragmentation
            )
        if kinds == {"vertical"}:
            return self._decompose_vertical(
                query, expr, analysis, collection, fragmentation
            )
        return self._decompose_hybrid(
            query, expr, analysis, collection, fragmentation
        )

    # ------------------------------------------------------------------
    # Logical-plan assembly
    # ------------------------------------------------------------------
    @staticmethod
    def _assemble(
        collection: str,
        scans: list[FragmentScan],
        composition: CompositionSpec,
        notes: list[str],
    ) -> LogicalPlan:
        if composition.kind == "aggregate":
            inner = MergeAggregate(
                composition.aggregate,
                tuple(
                    PartialAggregate(composition.aggregate, scan)
                    for scan in scans
                ),
            )
        elif composition.kind == "reconstruct":
            inner = IdJoin(
                composition.original_query,
                composition.source_collection,
                composition.root_label,
                tuple(scans),
            )
        else:
            inner = UnionNode(tuple(scans))
        return LogicalPlan(
            collection=collection,
            root=Compose(inner),
            composition=composition,
            notes=tuple(notes),
        )

    def _scan_class(self, predicate) -> tuple[type, Optional[str]]:
        """(leaf class, predicate annotation) for an answer-purpose scan.

        Index-eligible leaves exist only when the decomposer-level knob
        is on *and* the query carries a pruning predicate an index could
        serve; everything else stays a plain full scan (and un-annotated,
        keeping ``use_indexes=False`` plans rendering exactly as before).
        """
        if self.use_indexes and predicate is not None:
            return IndexScan, str(predicate)
        return FragmentScan, None

    def _rename_scan(
        self,
        collection: str,
        fragment_name: str,
        shipped: Expr,
        selectivity: float,
        predicate=None,
    ) -> FragmentScan:
        """One scan with a renamed-query candidate per replica."""
        candidates = tuple(
            ScanCandidate(
                site=entry.site,
                stored_collection=entry.stored_collection,
                query=unparse(
                    rename_collections(
                        shipped, {collection: entry.stored_collection}
                    )
                ),
            )
            for entry in self.catalog.replicas(collection, fragment_name)
        )
        scan_class, annotation = self._scan_class(predicate)
        return scan_class(
            fragment=fragment_name,
            candidates=candidates,
            selectivity=selectivity,
            predicate=annotation,
        )

    def _resolve_collection(
        self, analysis: QueryAnalysis, collection: Optional[str]
    ) -> str:
        named = {name for name in analysis.collections if name is not None}
        if collection is not None:
            return collection
        if len(named) == 1:
            return next(iter(named))
        if not named:
            raise DecompositionError(
                "query reads no named collection; pass collection= explicitly"
            )
        raise DecompositionError(
            f"query reads several collections ({', '.join(sorted(named))});"
            " multi-collection decomposition is not supported"
        )

    # ------------------------------------------------------------------
    # Horizontal
    # ------------------------------------------------------------------
    def _decompose_horizontal(
        self,
        query: str,
        expr: Expr,
        analysis: QueryAnalysis,
        collection: str,
        fragmentation: FragmentationSchema,
    ) -> LogicalPlan:
        fragments = fragmentation.horizontal_fragments()
        relevant, pruned = self._prune_by_predicate(
            fragments, analysis.predicate
        )
        notes = []
        if pruned:
            notes.append(
                "pruned fragments (predicate contradiction): "
                + ", ".join(pruned)
            )
        composition = self._value_composition(
            analysis, query, collection, fragmentation
        )
        if not relevant:
            # The query contradicts every fragment: answer is empty, but we
            # must still return a well-formed plan; ship to none and let the
            # composer produce the aggregate identity / empty result.
            return self._assemble(collection, [], composition, notes)
        shipped = self._shippable_ast(expr, analysis)
        selectivity = analysis.selectivity_hint()
        scans = [
            self._rename_scan(
                collection,
                fragment.name,
                shipped,
                selectivity,
                predicate=analysis.predicate,
            )
            for fragment in relevant
        ]
        self._note_order_by(expr, len(scans), notes)
        return self._assemble(collection, scans, composition, notes)

    def _prune_by_predicate(
        self,
        fragments: list[HorizontalFragment],
        predicate: Optional[Predicate],
    ) -> tuple[list[HorizontalFragment], list[str]]:
        if predicate is None:
            return list(fragments), []
        relevant, pruned = [], []
        for fragment in fragments:
            if definitely_disjoint(predicate, fragment.predicate):
                pruned.append(fragment.name)
            else:
                relevant.append(fragment)
        return relevant, pruned

    def _value_composition(
        self,
        analysis: QueryAnalysis,
        query: str,
        collection: str,
        fragmentation: FragmentationSchema,
    ) -> CompositionSpec:
        if analysis.aggregate is not None:
            return CompositionSpec(kind="aggregate", aggregate=analysis.aggregate)
        return CompositionSpec(kind="concat")

    @staticmethod
    def _note_order_by(expr: Expr, subquery_count: int, notes: list[str]) -> None:
        """Concat composition has bag semantics: warn when a top-level
        ``order by`` spans several fragments (each sub-result is ordered,
        but the concatenation interleaves fragments in catalog order)."""
        if (
            subquery_count > 1
            and isinstance(expr, FLWOR)
            and expr.order_by
        ):
            notes.append(
                "top-level 'order by' spans multiple fragments: each"
                " partial result is ordered, the concatenation is not"
            )

    def _shippable_ast(self, expr: Expr, analysis: QueryAnalysis) -> Expr:
        """The AST each fragment executes (aggregates become partials)."""
        if analysis.aggregate == "avg":
            return rewrite_avg_to_sum_count(expr)
        if analysis.aggregate == "count":
            # count(for ... return $v) counts binding tuples; returning a
            # literal instead is execution-equivalent and lets fragment
            # rewriting succeed even when $v's node is not materialized in
            # the fragment (e.g. the bare article of a vertical design).
            return _neutralize_counted_returns(expr)
        return expr

    # ------------------------------------------------------------------
    # Vertical
    # ------------------------------------------------------------------
    def _decompose_vertical(
        self,
        query: str,
        expr: Expr,
        analysis: QueryAnalysis,
        collection: str,
        fragmentation: FragmentationSchema,
    ) -> LogicalPlan:
        fragments = fragmentation.vertical_fragments()
        if analysis.paths_exact and analysis.touched_paths:
            relevant = [
                f
                for f in fragments
                if any(
                    _path_touches_fragment(f, path)
                    for path in analysis.touched_paths
                )
            ]
            if not relevant:
                relevant = list(fragments)
        else:
            relevant = list(fragments)
        notes = [
            f"vertical localization: {len(relevant)}/{len(fragments)}"
            " fragment(s) relevant"
        ]
        if len(relevant) == 1:
            fragment = relevant[0]
            rewritten = rewrite_paths_for_fragment_root(
                self._shippable_ast(expr, analysis),
                [s.name for s in fragment.path.steps],
            )
            if rewritten is not None:
                scan = self._rename_scan(
                    collection,
                    fragment.name,
                    rewritten,
                    analysis.selectivity_hint(),
                    predicate=analysis.predicate,
                )
                return self._assemble(
                    collection,
                    [scan],
                    self._value_composition(
                        analysis, query, collection, fragmentation
                    ),
                    notes,
                )
            notes.append("path rewrite failed; falling back to reconstruction")
        return self._reconstruction_plan(
            query, collection, fragmentation, relevant, notes
        )

    def _reconstruction_plan(
        self,
        query: str,
        collection: str,
        fragmentation: FragmentationSchema,
        relevant,
        notes: list[str],
    ) -> LogicalPlan:
        scans = []
        for fragment in relevant:
            candidates = tuple(
                ScanCandidate(
                    site=entry.site,
                    stored_collection=entry.stored_collection,
                    query=FETCH_ALL_TEMPLATE.format(
                        name=entry.stored_collection
                    ),
                )
                for entry in self.catalog.replicas(collection, fragment.name)
            )
            scans.append(
                FragmentScan(
                    fragment=fragment.name,
                    candidates=candidates,
                    purpose="fetch",
                    selectivity=1.0,
                )
            )
        notes.append(
            "composition requires the ID-join (expensive; cf. paper §5,"
            " vertical fragmentation)"
        )
        composition = CompositionSpec(
            kind="reconstruct",
            original_query=query,
            source_collection=collection,
            root_label=fragmentation.root_label,
        )
        return self._assemble(collection, scans, composition, notes)

    # ------------------------------------------------------------------
    # Hybrid
    # ------------------------------------------------------------------
    def _decompose_hybrid(
        self,
        query: str,
        expr: Expr,
        analysis: QueryAnalysis,
        collection: str,
        fragmentation: FragmentationSchema,
    ) -> LogicalPlan:
        hybrids = fragmentation.hybrid_fragments()
        others = [f for f in fragmentation if not isinstance(f, HybridFragment)]
        if not hybrids:
            raise DecompositionError(
                "mixed fragmentation without hybrid fragments is unsupported"
            )
        unit_path = hybrids[0].unit_path()
        touches_units, touches_rest = self._hybrid_touch_sets(
            analysis, unit_path, others
        )
        notes = [
            f"hybrid localization: units={touches_units}, remainder={touches_rest}"
        ]
        if touches_units and not touches_rest:
            return self._hybrid_unit_plan(
                query, expr, analysis, collection, fragmentation, hybrids, notes
            )
        if touches_rest and not touches_units:
            return self._hybrid_remainder_plan(
                query, expr, analysis, collection, others, notes, fragmentation
            )
        return self._reconstruction_plan(
            query, collection, fragmentation, list(fragmentation), notes
        )

    def _hybrid_touch_sets(
        self,
        analysis: QueryAnalysis,
        unit_path: PathExpr,
        others,
    ) -> tuple[bool, bool]:
        if not analysis.paths_exact or not analysis.touched_paths:
            return True, bool(others)
        touches_units = False
        touches_rest = False
        for path in analysis.touched_paths:
            if unit_path.is_prefix_of(path):
                touches_units = True
            elif path.is_prefix_of(unit_path):
                # Chain prefix (/Store, /Store/Items): present in FragMode2
                # documents; counts as the unit region.
                touches_units = True
            else:
                touches_rest = True
        return touches_units, touches_rest

    def _hybrid_unit_plan(
        self,
        query: str,
        expr: Expr,
        analysis: QueryAnalysis,
        collection: str,
        fragmentation: FragmentationSchema,
        hybrids: list[HybridFragment],
        notes: list[str],
    ) -> LogicalPlan:
        # Concat composition is only sound when every iteration variable
        # ranges over units (or deeper): a variable bound to the chain
        # (e.g. the Store root) sees one document per *fragment*, so
        # per-document constructs (inner aggregates, one-element-per-doc
        # returns) would multiply. Fall back to reconstruction otherwise.
        unit_path = hybrids[0].unit_path()
        if not analysis.bindings_exact or not all(
            unit_path.is_prefix_of(binding)
            for binding in analysis.binding_paths
        ):
            notes.append(
                "iteration over the chain (per-document semantics);"
                " falling back to reconstruction"
            )
            return self._reconstruction_plan(
                query, collection, fragmentation, list(fragmentation), notes
            )
        unit_predicate = (
            _reroot_predicate(
                analysis.predicate, hybrids[0].unit_path(), hybrids[0].unit_label
            )
            if analysis.predicate is not None
            else None
        )
        relevant, pruned = [], []
        for fragment in hybrids:
            if (
                unit_predicate is not None
                and fragment.predicate is not None
                and definitely_disjoint(unit_predicate, fragment.predicate)
            ):
                pruned.append(fragment.name)
            else:
                relevant.append(fragment)
        if pruned:
            notes.append("pruned hybrid fragments: " + ", ".join(pruned))
        shipped = self._shippable_ast(expr, analysis)
        selectivity = analysis.selectivity_hint()
        scans = []
        for fragment in relevant:
            # FragMode1 replicas store bare unit documents, so their
            # candidate query needs the chain prefix stripped; FragMode2
            # replicas ship the query as-is. The rewrite is computed once
            # per fragment and reused across its Mode1 replicas.
            mode1_expr: Optional[Expr] = None
            candidates = []
            for entry in self.catalog.replicas(collection, fragment.name):
                fragment_expr = shipped
                if entry.hybrid_mode == 1:
                    if mode1_expr is None:
                        chain = [s.name for s in fragment.unit_path().steps]
                        mode1_expr = rewrite_paths_for_fragment_root(
                            shipped, chain
                        )
                        if mode1_expr is None:
                            notes.append(
                                f"FragMode1 rewrite failed for {fragment.name};"
                                " falling back to reconstruction"
                            )
                            return self._reconstruction_plan(
                                query,
                                collection,
                                fragmentation,
                                list(fragmentation),
                                notes,
                            )
                    fragment_expr = mode1_expr
                renamed = rename_collections(
                    fragment_expr, {collection: entry.stored_collection}
                )
                candidates.append(
                    ScanCandidate(
                        site=entry.site,
                        stored_collection=entry.stored_collection,
                        query=unparse(renamed),
                    )
                )
            scan_class, annotation = self._scan_class(analysis.predicate)
            scans.append(
                scan_class(
                    fragment=fragment.name,
                    candidates=tuple(candidates),
                    selectivity=selectivity,
                    predicate=annotation,
                )
            )
        self._note_order_by(expr, len(scans), notes)
        return self._assemble(
            collection,
            scans,
            self._value_composition(analysis, query, collection, fragmentation),
            notes,
        )

    def _hybrid_remainder_plan(
        self,
        query: str,
        expr: Expr,
        analysis: QueryAnalysis,
        collection: str,
        others,
        notes: list[str],
        fragmentation: FragmentationSchema,
    ) -> LogicalPlan:
        if len(others) != 1:
            return self._reconstruction_plan(
                query, collection, fragmentation, list(fragmentation), notes
            )
        fragment = others[0]
        shipped = self._shippable_ast(expr, analysis)
        notes.append(f"query confined to remainder fragment {fragment.name}")
        scan = self._rename_scan(
            collection,
            fragment.name,
            shipped,
            analysis.selectivity_hint(),
            predicate=analysis.predicate,
        )
        return self._assemble(
            collection,
            [scan],
            self._value_composition(analysis, query, collection, fragmentation),
            notes,
        )


# ----------------------------------------------------------------------
# Relevance helpers
# ----------------------------------------------------------------------
def _path_touches_fragment(fragment: VerticalFragment, path: PathExpr) -> bool:
    """Could ``path`` select nodes inside the fragment's projected region?"""
    inside = fragment.path.may_contain(path) or path.may_contain(fragment.path)
    if not inside:
        return False
    for prune in fragment.prune:
        if prune.is_prefix_of(path) and str(prune) != str(path):
            return False
    return True


def _reroot_predicate(
    predicate: Predicate, unit_path: PathExpr, unit_label: str
) -> Optional[Predicate]:
    """Translate a document-rooted predicate to a unit-rooted one.

    ``/Store/Items/Item/Section = "CD"`` becomes ``/Item/Section = "CD"``
    when the unit path is ``/Store/Items/Item``. Parts that do not sit
    under the unit path are dropped (the result stays a sound necessary
    condition for unit membership).
    """
    if isinstance(predicate, And):
        parts = [
            p
            for p in (
                _reroot_predicate(part, unit_path, unit_label)
                for part in predicate.parts
            )
            if p is not None
        ]
        if not parts:
            return None
        return parts[0] if len(parts) == 1 else And(tuple(parts))
    if isinstance(predicate, Or):
        parts = []
        for part in predicate.parts:
            rerooted = _reroot_predicate(part, unit_path, unit_label)
            if rerooted is None:
                return None  # a disjunct escaping the unit defeats pruning
            parts.append(rerooted)
        return Or(tuple(parts))
    if isinstance(predicate, Not):
        inner = _reroot_predicate(predicate.inner, unit_path, unit_label)
        return Not(inner) if inner is not None else None
    path = getattr(predicate, "path", None)
    if path is None:
        return None
    rerooted_path = _reroot_path(path, unit_path, unit_label)
    if rerooted_path is None:
        return None
    if isinstance(predicate, Comparison):
        return Comparison(rerooted_path, predicate.op, predicate.value)
    if isinstance(predicate, Contains):
        return Contains(rerooted_path, predicate.needle)
    if isinstance(predicate, StartsWith):
        return StartsWith(rerooted_path, predicate.prefix)
    if isinstance(predicate, Exists):
        return Exists(rerooted_path)
    if isinstance(predicate, Empty):
        return Empty(rerooted_path)
    return None


def _reroot_path(
    path: PathExpr, unit_path: PathExpr, unit_label: str
) -> Optional[PathExpr]:
    if not unit_path.is_simple or not path.is_simple:
        return None
    unit_labels = [s.name for s in unit_path.steps]
    path_labels = [s.name for s in path.steps]
    if len(path_labels) < len(unit_labels):
        return None
    if path_labels[: len(unit_labels)] != unit_labels:
        return None
    kept = path.steps[len(unit_labels) :]
    steps = (Step(Axis.CHILD, unit_label),) + kept
    return PathExpr(steps)


# ----------------------------------------------------------------------
# AST rewriters
# ----------------------------------------------------------------------
def rename_collections(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Replace collection names per ``mapping`` throughout the AST."""

    def transform(node: Expr) -> Expr:
        if isinstance(node, FunctionCall) and node.name == "collection":
            if node.args and isinstance(node.args[0], Literal):
                name = str(node.args[0].value)
                if name in mapping:
                    return FunctionCall(
                        "collection", (Literal(mapping[name]),)
                    )
        return node

    return _transform(expr, transform)


def rewrite_paths_for_fragment_root(
    expr: Expr, chain_labels: list[str]
) -> Optional[Expr]:
    """Rewrite a query to run against fragment documents.

    ``chain_labels`` are the labels of the fragment's path (e.g.
    ``[article, prolog]`` or ``[Store, Items, Item]``); fragment documents
    are rooted at the *last* label. Collection-rooted paths starting with
    the full chain keep only the last label onward; a ``for`` binding that
    stops partway down the chain (``for $a in collection()/article``) is
    re-bound to the fragment roots, and the chain remainder is stripped
    from every path hanging off the variable (``$a/prolog/title`` →
    ``$a/title``). Descendant-axis leading steps need no rewriting.

    Returns None when some path addresses the original document shape in a
    way that cannot be mapped (the caller falls back to reconstruction).
    """
    rewriter = _FragmentRootRewriter(chain_labels)
    rewritten = rewriter.rewrite(expr, {})
    return None if rewriter.failed else rewritten


class _FragmentRootRewriter:
    """Variable-aware chain-prefix stripping (see the function above).

    ``strips`` maps each in-scope variable to the list of labels still to
    be consumed by paths hanging off it: ``[]`` means the variable binds
    fragment-level nodes (no stripping needed), a non-empty list means the
    variable nominally binds an ancestor that fragment documents lack, so
    any use must first navigate down through exactly those labels.
    """

    def __init__(self, chain: list[str]):
        self.chain = chain
        self.failed = False

    # ------------------------------------------------------------------
    def rewrite(self, expr: Expr, strips: dict[str, list[str]]) -> Expr:
        if self.failed:
            return expr
        if isinstance(expr, FLWOR):
            return self._rewrite_flwor(expr, strips)
        if isinstance(expr, Quantified):
            scope = dict(strips)
            seq, strip = self._rewrite_binding(expr.seq, strips)
            if strip is not None:
                scope[expr.var] = strip
            return Quantified(
                expr.kind, expr.var, seq, self.rewrite(expr.condition, scope)
            )
        if isinstance(expr, PathApply):
            return self._rewrite_path(expr, strips)
        if isinstance(expr, VarRef):
            if strips.get(expr.name):
                # The variable's nominal node does not exist in fragment
                # documents; a bare use cannot be mapped.
                self.failed = True
            return expr
        return _rebuild(expr, lambda node: self.rewrite(node, strips))

    def _rewrite_flwor(self, expr: FLWOR, strips: dict[str, list[str]]) -> Expr:
        scope = dict(strips)
        clauses = []
        for clause in expr.clauses:
            if isinstance(clause, ForClause):
                seq, strip = self._rewrite_binding(clause.seq, scope)
                clauses.append(ForClause(clause.var, seq, clause.position_var))
                scope[clause.var] = strip if strip is not None else []
            else:
                seq, strip = self._rewrite_binding(clause.expr, scope)
                clauses.append(LetClause(clause.var, seq))
                scope[clause.var] = strip if strip is not None else []
        where = self.rewrite(expr.where, scope) if expr.where is not None else None
        order_by = tuple(
            OrderSpec(self.rewrite(s.key, scope), s.descending)
            for s in expr.order_by
        )
        return FLWOR(
            tuple(clauses), where, order_by, self.rewrite(expr.return_expr, scope)
        )

    def _rewrite_binding(
        self, seq: Expr, strips: dict[str, list[str]]
    ) -> tuple[Expr, Optional[list[str]]]:
        """Rewrite a binding sequence; returns (new_seq, strip-for-var)."""
        if not isinstance(seq, PathApply):
            return self.rewrite(seq, strips), []
        anchored = seq.primary is None or (
            isinstance(seq.primary, FunctionCall)
            and seq.primary.name in ("collection", "doc")
        )
        if anchored:
            rewritten, strip = self._strip_anchored(seq, strips, binding=True)
            return rewritten, strip
        if isinstance(seq.primary, VarRef):
            rewritten, strip = self._strip_var_rooted(seq, strips, binding=True)
            return rewritten, strip
        return self.rewrite(seq, strips), []

    # ------------------------------------------------------------------
    def _rewrite_path(self, expr: PathApply, strips: dict[str, list[str]]) -> Expr:
        anchored = expr.primary is None or (
            isinstance(expr.primary, FunctionCall)
            and expr.primary.name in ("collection", "doc")
        )
        if anchored:
            rewritten, strip = self._strip_anchored(expr, strips, binding=False)
            if strip:  # non-binding use must map fully
                self.failed = True
            return rewritten
        if isinstance(expr.primary, VarRef):
            rewritten, strip = self._strip_var_rooted(expr, strips, binding=False)
            if strip:
                self.failed = True
            return rewritten
        primary = self.rewrite(expr.primary, strips)
        return PathApply(primary, self._rewrite_step_predicates(expr.steps, strips), expr.absolute)

    def _strip_anchored(
        self, expr: PathApply, strips: dict[str, list[str]], binding: bool
    ) -> tuple[Expr, Optional[list[str]]]:
        steps = expr.steps
        if not steps:
            return expr, []
        first = steps[0]
        if first.axis == "descendant-or-self":
            return (
                PathApply(
                    expr.primary,
                    self._rewrite_step_predicates(steps, strips),
                    expr.absolute,
                ),
                [],
            )
        if first.name != self.chain[0] or first.is_attribute:
            return (
                PathApply(
                    expr.primary,
                    self._rewrite_step_predicates(steps, strips),
                    expr.absolute,
                ),
                [],
            )
        matched = 0
        for step, label in zip(steps, self.chain):
            if step.axis != "child" or step.name != label or step.is_attribute:
                break
            matched += 1
        if matched < len(self.chain):
            # Binding stops partway down the chain: bind fragment roots and
            # leave the chain remainder to be stripped off the variable.
            if not binding or matched < len(steps):
                self.failed = True
                return expr, None
            if any(step.predicates for step in steps):
                self.failed = True  # predicates on dropped chain steps
                return expr, None
            new_steps = (AxisStep("child", self.chain[-1]),)
            remainder = self.chain[matched:]
            return PathApply(expr.primary, new_steps, expr.absolute), remainder
        # Full chain matched: keep the last chain step (with predicates)
        # and everything after it.
        if any(step.predicates for step in steps[: len(self.chain) - 1]):
            self.failed = True  # predicates on dropped chain steps
            return expr, None
        kept = steps[len(self.chain) - 1 :]
        return (
            PathApply(
                expr.primary,
                self._rewrite_step_predicates(kept, strips),
                expr.absolute,
            ),
            [],
        )

    def _strip_var_rooted(
        self, expr: PathApply, strips: dict[str, list[str]], binding: bool
    ) -> tuple[Expr, Optional[list[str]]]:
        assert isinstance(expr.primary, VarRef)
        strip = strips.get(expr.primary.name) or []
        steps = expr.steps
        if not strip:
            return (
                PathApply(
                    expr.primary,
                    self._rewrite_step_predicates(steps, strips),
                    expr.absolute,
                ),
                [],
            )
        consumable = min(len(strip), len(steps))
        for index in range(consumable):
            step = steps[index]
            if (
                step.axis != "child"
                or step.name != strip[index]
                or step.is_attribute
                or step.predicates
            ):
                if step.axis == "descendant-or-self":
                    # '//' skips the missing ancestors by itself.
                    return (
                        PathApply(
                            expr.primary,
                            self._rewrite_step_predicates(steps, strips),
                            expr.absolute,
                        ),
                        [],
                    )
                self.failed = True
                return expr, None
        remaining_strip = strip[consumable:]
        kept = steps[consumable:]
        if remaining_strip and not binding:
            self.failed = True
            return expr, None
        if not kept:
            return expr.primary, remaining_strip
        return (
            PathApply(
                expr.primary,
                self._rewrite_step_predicates(kept, strips),
                expr.absolute,
            ),
            remaining_strip,
        )

    def _rewrite_step_predicates(
        self, steps: tuple[AxisStep, ...], strips: dict[str, list[str]]
    ) -> tuple[AxisStep, ...]:
        return tuple(
            AxisStep(
                s.axis,
                s.name,
                s.is_attribute,
                s.is_text,
                tuple(self.rewrite(p, strips) for p in s.predicates),
            )
            for s in steps
        )


def rewrite_avg_to_sum_count(expr: Expr) -> Expr:
    """Turn a top-level ``avg(X)`` into the pair ``(sum(X), count(X))``."""
    if isinstance(expr, FunctionCall) and expr.name == "avg":
        return SequenceExpr(
            (
                FunctionCall("sum", expr.args),
                FunctionCall("count", expr.args),
            )
        )
    if isinstance(expr, ElementConstructor) and len(expr.content) == 1:
        return ElementConstructor(
            expr.name, (rewrite_avg_to_sum_count(expr.content[0]),)
        )
    if isinstance(expr, FLWOR) and all(
        isinstance(c, LetClause) for c in expr.clauses
    ):
        return FLWOR(
            expr.clauses,
            expr.where,
            expr.order_by,
            rewrite_avg_to_sum_count(expr.return_expr),
        )
    return expr


def _transform(expr: Expr, fn) -> Expr:
    """Bottom-up AST transformation applying ``fn`` to every node."""
    rebuilt = _rebuild(expr, lambda child: _transform(child, fn))
    return fn(rebuilt)


def _rebuild(expr: Expr, fn) -> Expr:
    """Rebuild one node, transforming direct children through ``fn``.

    ``fn`` fully transforms each child; this function never recurses by
    itself, so callers with scoped state (the fragment-root rewriter)
    control the traversal.
    """
    if isinstance(expr, SequenceExpr):
        return SequenceExpr(tuple(fn(item) for item in expr.items))
    if isinstance(expr, RangeExpr):
        return RangeExpr(fn(expr.start), fn(expr.end))
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, fn(expr.left), fn(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, fn(expr.operand))
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name, tuple(fn(a) for a in expr.args))
    if isinstance(expr, PathApply):
        primary = fn(expr.primary) if expr.primary is not None else None
        steps = tuple(
            AxisStep(
                s.axis,
                s.name,
                s.is_attribute,
                s.is_text,
                tuple(fn(p) for p in s.predicates),
            )
            for s in expr.steps
        )
        return PathApply(primary, steps, expr.absolute)
    if isinstance(expr, FilterExpr):
        return FilterExpr(
            fn(expr.primary),
            tuple(fn(p) for p in expr.predicates),
        )
    if isinstance(expr, FLWOR):
        clauses = []
        for clause in expr.clauses:
            if isinstance(clause, ForClause):
                clauses.append(
                    ForClause(
                        clause.var, fn(clause.seq), clause.position_var
                    )
                )
            else:
                clauses.append(LetClause(clause.var, fn(clause.expr)))
        where = fn(expr.where) if expr.where is not None else None
        order_by = tuple(
            OrderSpec(fn(s.key), s.descending) for s in expr.order_by
        )
        return FLWOR(tuple(clauses), where, order_by, fn(expr.return_expr))
    if isinstance(expr, IfExpr):
        return IfExpr(
            fn(expr.condition),
            fn(expr.then_branch),
            fn(expr.else_branch),
        )
    if isinstance(expr, Quantified):
        return Quantified(
            expr.kind,
            expr.var,
            fn(expr.seq),
            fn(expr.condition),
        )
    if isinstance(expr, ElementConstructor):
        return ElementConstructor(
            expr.name, tuple(fn(c) for c in expr.content)
        )
    if isinstance(expr, AttributeConstructor):
        return AttributeConstructor(
            expr.name, tuple(fn(c) for c in expr.content)
        )
    if isinstance(expr, TextConstructor):
        return TextConstructor(tuple(fn(c) for c in expr.content))
    return expr
