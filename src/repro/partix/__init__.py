"""PartiX: fragmentation model, catalogs, publisher, decomposer, composer.

This package is the paper's primary contribution: the formal fragment
definitions with correctness rules (§3), and the middleware that
decomposes XQuery over fragments and composes results (§4).
"""

from repro.partix.advisor import (
    DesignRecommendation,
    FragmentationAdvisor,
    WorkloadQuery,
)
from repro.partix.catalog import (
    CollectionDeclaration,
    DistributionCatalog,
    FragmentAllocation,
    FragmentStatistics,
    SchemaCatalog,
)
from repro.partix.composer import ComposedResult, ResultComposer
from repro.partix.correctness import (
    CorrectnessReport,
    symbolic_report,
    verify_fragmentation,
)
from repro.partix.decomposer import (
    CompositionSpec,
    DecomposedQuery,
    QueryDecomposer,
    SubQuery,
    annotated,
    rename_collections,
    rewrite_avg_to_sum_count,
    rewrite_paths_for_fragment_root,
)
from repro.partix.driver import MiniXDriver, PartixDriver
from repro.partix.fragments import (
    FragmentDefinition,
    FragmentationSchema,
    HorizontalFragment,
    HybridFragment,
    VerticalFragment,
)
from repro.partix.middleware import Partix, PartixResult
from repro.partix.serialization import (
    design_from_dict,
    design_to_dict,
    fragment_from_dict,
    fragment_to_dict,
    load_design,
    predicate_from_dict,
    predicate_to_dict,
    save_design,
)
from repro.partix.publisher import (
    DataPublisher,
    FragMode,
    FragmentPublication,
    PublicationReport,
)

__all__ = [
    "CollectionDeclaration",
    "DesignRecommendation",
    "FragmentationAdvisor",
    "WorkloadQuery",
    "ComposedResult",
    "CompositionSpec",
    "CorrectnessReport",
    "DataPublisher",
    "DecomposedQuery",
    "DistributionCatalog",
    "FragMode",
    "FragmentAllocation",
    "FragmentStatistics",
    "FragmentDefinition",
    "FragmentPublication",
    "FragmentationSchema",
    "HorizontalFragment",
    "HybridFragment",
    "MiniXDriver",
    "Partix",
    "PartixDriver",
    "PartixResult",
    "PublicationReport",
    "QueryDecomposer",
    "ResultComposer",
    "SchemaCatalog",
    "SubQuery",
    "VerticalFragment",
    "annotated",
    "rename_collections",
    "rewrite_avg_to_sum_count",
    "rewrite_paths_for_fragment_root",
    "design_from_dict",
    "design_to_dict",
    "fragment_from_dict",
    "fragment_to_dict",
    "load_design",
    "predicate_from_dict",
    "predicate_to_dict",
    "save_design",
    "symbolic_report",
    "verify_fragmentation",
]
