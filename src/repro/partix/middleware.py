"""The PartiX middleware (paper §4, Figure 5/6).

"PartiX works as a middleware between the user application and a set of
DBMS servers, which actually store the distributed XML data. ... when a
query arrives, PartiX analyzes the fragmentation schema to properly split
it into sub-queries, and then sends each sub-query to its respective
fragment. Also, PartiX gathers the results of the sub-queries and
reconstructs the query answer."

:class:`Partix` wires the catalog services, the data publisher, the query
decomposer and the result composer over a simulated cluster. Timing
follows the paper's methodology: the reported parallel time is the
slowest site's busy time plus composition, with transmission estimated
from result sizes over the network model and reported separately (the
paper's FragModeX-T / FragModeX-NT series).

Two execution modes cover the paper's simulation *and* the real thing:

* ``execution_mode="simulated"`` (default) — sub-queries run
  sequentially in-process, as the paper's prototype did;
* ``execution_mode="threads"`` — sub-queries run concurrently through a
  :class:`~repro.cluster.dispatch.ParallelDispatcher` (one worker lane
  per site, timeout/retry/failure policy).

Either way ``ParallelRound.measured_wall_seconds`` records the real
wall-clock of the round, and results are byte-identical across modes
(partial results always compose in plan order).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cluster.dispatch import ParallelDispatcher
from repro.cluster.network import NetworkModel
from repro.cluster.site import Cluster, ParallelRound, SubQueryExecution
from repro.datamodel.collection import Collection
from repro.partix.catalog import (
    DistributionCatalog,
    FragmentAllocation,
    SchemaCatalog,
)
from repro.partix.composer import ComposedResult, ResultComposer
from repro.partix.decomposer import (
    CompositionSpec,
    DecomposedQuery,
    QueryDecomposer,
    SubQuery,
)
from repro.partix.fragments import FragmentationSchema
from repro.partix.publisher import DataPublisher, FragMode, PublicationReport


@dataclass
class PartixResult:
    """Outcome of one distributed query."""

    query: str
    result_text: str
    result_bytes: int
    round: ParallelRound
    composed: ComposedResult
    transmission_seconds: float
    plan: Optional[DecomposedQuery] = None
    notes: list[str] = field(default_factory=list)

    @property
    def parallel_seconds(self) -> float:
        """Slowest-site time + composition (no transmission)."""
        return self.round.parallel_seconds + self.composed.compose_seconds

    @property
    def total_seconds(self) -> float:
        """Parallel time including estimated transmission."""
        return self.parallel_seconds + self.transmission_seconds

    @property
    def sequential_seconds(self) -> float:
        """Sum of all sub-query times (a one-site-at-a-time lower bound)."""
        return self.round.sequential_seconds + self.composed.compose_seconds

    @property
    def measured_wall_seconds(self) -> float:
        """Real wall-clock of the round + composition on this machine
        (concurrent in ``"threads"`` mode, sequential in ``"simulated"``)."""
        return self.round.measured_wall_seconds + self.composed.compose_seconds


class Partix:
    """Coordinator for distributed XQuery over fragmented repositories."""

    def __init__(
        self,
        cluster: Cluster,
        network: Optional[NetworkModel] = None,
        schema_catalog: Optional[SchemaCatalog] = None,
        distribution_catalog: Optional[DistributionCatalog] = None,
        dispatcher: Optional[ParallelDispatcher] = None,
    ):
        self.cluster = cluster
        self.network = network if network is not None else NetworkModel()
        self.dispatcher = (
            dispatcher if dispatcher is not None else ParallelDispatcher()
        )
        self.schema_catalog = (
            schema_catalog if schema_catalog is not None else SchemaCatalog()
        )
        self.distribution_catalog = (
            distribution_catalog
            if distribution_catalog is not None
            else DistributionCatalog()
        )
        self.publisher = DataPublisher(cluster, self.distribution_catalog)
        self.decomposer = QueryDecomposer(self.distribution_catalog)
        self.composer = ResultComposer()

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def publish(
        self,
        collection: Collection,
        fragmentation: FragmentationSchema,
        allocations: Optional[Sequence[FragmentAllocation]] = None,
        frag_mode: FragMode = FragMode.SINGLE_DOCUMENT,
        verify: bool = False,
        require_homogeneous: bool = True,
    ) -> PublicationReport:
        """Fragment and distribute a collection (see :class:`DataPublisher`)."""
        return self.publisher.publish(
            collection,
            fragmentation,
            allocations=allocations,
            frag_mode=frag_mode,
            verify=verify,
            require_homogeneous=require_homogeneous,
        )

    def publish_centralized(
        self,
        collection: Collection,
        site_name: str,
        stored_collection: Optional[str] = None,
    ):
        """Store a whole collection at one site (baseline configuration)."""
        return self.publisher.publish_centralized(
            collection, site_name, stored_collection=stored_collection
        )

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: str,
        collection: Optional[str] = None,
        plan: Optional[DecomposedQuery] = None,
        execution_mode: str = "simulated",
        dispatcher: Optional[ParallelDispatcher] = None,
    ) -> PartixResult:
        """Run a query over the fragmented repository.

        Without an explicit ``plan``, the automatic decomposer derives one
        from the distribution catalog (our extension); passing a plan
        reproduces the paper's annotated mode ("data location is provided
        along with sub-queries").

        ``execution_mode`` selects how sub-queries run: ``"simulated"``
        executes them sequentially in-process (paper methodology),
        ``"threads"`` dispatches them concurrently — one worker lane per
        site — through ``dispatcher`` (default: this instance's
        :class:`ParallelDispatcher`). Both modes compose partial results
        in plan order, so the answer is byte-identical.
        """
        if plan is None:
            plan = self.decomposer.decompose(query, collection)
        notes = list(plan.notes)
        if execution_mode == "simulated":
            round_, partials = self._execute_simulated(plan)
        elif execution_mode == "threads":
            active = dispatcher if dispatcher is not None else self.dispatcher
            outcome = active.dispatch(self.cluster, plan.subqueries)
            round_ = outcome.round
            partials = [
                (plan.subqueries[index], execution.result.result_text)
                for index, execution in enumerate(outcome.executions_by_index)
                if execution is not None
            ]
            notes.extend(outcome.notes)
        else:
            raise ValueError(
                "execution_mode must be 'simulated' or 'threads',"
                f" got {execution_mode!r}"
            )
        composed = self.composer.compose(plan.composition, partials)
        transmission = self.network.gather_seconds(
            round_.result_sizes,
            query_sizes=[
                len(subquery.query.encode("utf-8"))
                for subquery in plan.subqueries
            ],
        )
        return PartixResult(
            query=query,
            result_text=composed.result_text,
            result_bytes=composed.result_bytes,
            round=round_,
            composed=composed,
            transmission_seconds=transmission,
            plan=plan,
            notes=notes,
        )

    def _execute_simulated(
        self, plan: DecomposedQuery
    ) -> tuple[ParallelRound, list[tuple[SubQuery, str]]]:
        """The paper's sequential in-process round (parallelism simulated)."""
        round_ = ParallelRound()
        partials: list[tuple[SubQuery, str]] = []
        started = time.perf_counter()
        for subquery in plan.subqueries:
            site = self.cluster.site(subquery.site)
            result = site.execute(subquery.query)
            round_.executions.append(
                SubQueryExecution(
                    site=subquery.site,
                    fragment=subquery.fragment,
                    query=subquery.query,
                    result=result,
                )
            )
            partials.append((subquery, result.result_text))
        round_.measured_wall_seconds = time.perf_counter() - started
        return round_, partials

    def explain(
        self, query: str, collection: Optional[str] = None
    ) -> DecomposedQuery:
        """The plan the automatic decomposer would execute — sub-queries,
        target sites and composition — without running anything."""
        return self.decomposer.decompose(query, collection)

    def execute_centralized(
        self,
        query: str,
        site_name: str,
    ) -> PartixResult:
        """Run a query directly at one site (the centralized baseline)."""
        site = self.cluster.site(site_name)
        started = time.perf_counter()
        result = site.execute(query)
        wall_seconds = time.perf_counter() - started
        round_ = ParallelRound(
            executions=[
                SubQueryExecution(
                    site=site_name,
                    fragment="(centralized)",
                    query=query,
                    result=result,
                )
            ],
            measured_wall_seconds=wall_seconds,
        )
        composed = ComposedResult(
            result_text=result.result_text,
            result_bytes=result.result_bytes,
            compose_seconds=0.0,
        )
        transmission = self.network.gather_seconds(
            [result.result_bytes],
            query_sizes=[len(query.encode("utf-8"))],
        )
        return PartixResult(
            query=query,
            result_text=result.result_text,
            result_bytes=result.result_bytes,
            round=round_,
            composed=composed,
            transmission_seconds=transmission,
        )
