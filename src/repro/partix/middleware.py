"""The PartiX middleware (paper §4, Figure 5/6).

"PartiX works as a middleware between the user application and a set of
DBMS servers, which actually store the distributed XML data. ... when a
query arrives, PartiX analyzes the fragmentation schema to properly split
it into sub-queries, and then sends each sub-query to its respective
fragment. Also, PartiX gathers the results of the sub-queries and
reconstructs the query answer."

:class:`Partix` wires the catalog services, the data publisher, the query
decomposer and the result composer over a simulated cluster. Timing
follows the paper's methodology: the reported parallel time is the
slowest site's busy time plus composition, with transmission estimated
from result sizes over the network model and reported separately (the
paper's FragModeX-T / FragModeX-NT series).

Three execution modes cover the paper's simulation *and* the real thing:

* ``execution_mode="simulated"`` (default) — sub-queries run
  sequentially in-process, as the paper's prototype did;
* ``execution_mode="threads"`` — sub-queries run concurrently through a
  :class:`~repro.cluster.dispatch.ParallelDispatcher` (one worker lane
  per site, timeout/retry/failure policy);
* ``execution_mode="tcp"`` — the same dispatcher drives socket lanes to
  real site-server *processes* (see :mod:`repro.net`): serialization
  and transport costs are paid, not modeled. Call :meth:`Partix.start_tcp`
  first — it spawns one server per cluster site and mirrors every
  published fragment to them over the wire.

Each mode also runs with ``streaming=True`` (``"tcp-stream"`` is
shorthand for tcp + streaming): partial results arrive as bounded chunks
feeding an :class:`~repro.partix.composer.IncrementalComposer` instead
of barriering as monolithic strings — over sockets via RESULT_CHUNK
frames, in threads/simulated via the transports' chunk emulation, so the
very same chunk-boundary behavior is exercised everywhere. Streaming
rounds record ``peak_buffered_bytes`` and ``first_chunk_seconds``.

Execution is plan-driven: every query is decomposed into a logical plan,
lowered to a :class:`~repro.plan.physical.PhysicalPlan` (cost-based
site/replica selection; see :mod:`repro.plan`), and run through the one
:class:`~repro.plan.executor.PlanExecutor` path. The modes differ only
in the :class:`~repro.cluster.dispatch.Transport` they select —
``"simulated"`` is the in-process transport behind a serializing lock,
reproducing the paper's sequential round. ``Partix.explain`` returns the
physical plan (render it with ``.render()``) without executing anything.

In every mode ``ParallelRound.measured_wall_seconds`` records the real
wall-clock of the round, and results are byte-identical across modes
(partial results always compose in plan order).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

from repro.cluster.dispatch import (
    InProcessTransport,
    ParallelDispatcher,
    SerialTransport,
    Transport,
)
from repro.errors import CatalogContention, CatalogError, ClusterError
from repro.net.protocol import DEFAULT_CHUNK_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.bootstrap import TcpSiteCluster
from repro.cluster.network import NetworkModel
from repro.cluster.site import Cluster, ParallelRound, SubQueryExecution
from repro.datamodel.collection import Collection
from repro.partix.catalog import (
    DistributionCatalog,
    FragmentAllocation,
    SchemaCatalog,
)
from repro.partix.composer import ComposedResult, ResultComposer
from repro.partix.decomposer import DecomposedQuery, QueryDecomposer
from repro.partix.fragments import FragmentationSchema
from repro.partix.publisher import DataPublisher, FragMode, PublicationReport
from repro.plan.cache import PlanCache
from repro.plan.cost import CostModel
from repro.plan.executor import ExecutionMode, PlanExecutor
from repro.plan.lower import lower


@dataclass
class PartixResult:
    """Outcome of one distributed query."""

    query: str
    result_text: str
    result_bytes: int
    round: ParallelRound
    composed: ComposedResult
    transmission_seconds: float
    plan: Optional[DecomposedQuery] = None
    notes: list[str] = field(default_factory=list)

    @property
    def parallel_seconds(self) -> float:
        """Slowest-site time + composition (no transmission)."""
        return self.round.parallel_seconds + self.composed.compose_seconds

    @property
    def total_seconds(self) -> float:
        """Parallel time including estimated transmission."""
        return self.parallel_seconds + self.transmission_seconds

    @property
    def sequential_seconds(self) -> float:
        """Sum of all sub-query times (a one-site-at-a-time lower bound)."""
        return self.round.sequential_seconds + self.composed.compose_seconds

    @property
    def measured_wall_seconds(self) -> float:
        """Real wall-clock of the round + composition on this machine
        (concurrent in ``"threads"``/``"tcp"`` mode, sequential in
        ``"simulated"``)."""
        return self.round.measured_wall_seconds + self.composed.compose_seconds

    @property
    def bytes_sent(self) -> int:
        """Transport bytes sent dispatching the round's sub-queries —
        real framed socket bytes when :attr:`wire_measured`, otherwise
        the payload sizes that would have traveled."""
        return self.round.total_bytes_sent

    @property
    def bytes_received(self) -> int:
        """Transport bytes received gathering the round's results."""
        return self.round.total_bytes_received

    @property
    def wire_measured(self) -> bool:
        """True when the byte counts were measured on real sockets."""
        return self.round.wire_measured

    @property
    def streamed(self) -> bool:
        """True when the round ran through the streaming pipeline."""
        return self.round.streamed

    @property
    def peak_buffered_bytes(self) -> int:
        """Coordinator's peak in-memory partial-result buffering (streamed
        rounds; bounded by spill threshold × active lanes, not result
        size)."""
        return self.round.peak_buffered_bytes

    @property
    def first_chunk_seconds(self) -> Optional[float]:
        """Time-to-first-chunk of a streamed round (None otherwise)."""
        return self.round.first_chunk_seconds

    @property
    def failover_count(self) -> int:
        """Replica failovers the round's retries performed (0 = every
        sub-query was answered by the site the plan targeted)."""
        return self.round.failover_count

    @property
    def lane_timings(self) -> list[dict]:
        """Per-lane estimated vs measured seconds.

        The plan executor stamps every execution with the physical-plan
        node it realized and the cost model's estimate for it, so the
        planner's predictions can be checked against what actually
        happened (the bench ``modes`` figure records both). Failed-over
        lanes additionally report which sites each attempt targeted.
        """
        return [
            {
                "plan_node": execution.plan_node,
                "fragment": execution.fragment,
                "site": execution.site,
                "estimated_seconds": execution.estimated_seconds,
                "measured_seconds": execution.elapsed,
                "failover_count": execution.failover_count,
                "attempt_sites": list(execution.attempt_sites),
            }
            for execution in self.round.executions
        ]


def _cluster_shard_workers(cluster: Cluster) -> int:
    """Infer the intra-site worker pool size from the cluster's sites.

    The minimum across every site's introspectable engine — lowering
    must never stamp a degree some site cannot honor (it would silently
    serialize there, skewing the lane estimates). Sites without an
    engine (remote drivers) count as 0: the conservative answer.
    """
    sites = cluster.sites()
    if not sites:
        return 0
    workers = None
    for site in sites:
        engine = getattr(site.driver, "engine", None)
        if engine is None:
            return 0
        site_workers = int(getattr(engine, "shard_workers", 0))
        workers = site_workers if workers is None else min(workers, site_workers)
    return workers or 0


def _cluster_uses_indexes(cluster: Cluster) -> bool:
    """Infer index eligibility from the cluster's site configurations.

    True only when *every* site exposes a local engine whose planner
    runs with document indexes on. Sites without an introspectable
    engine (remote drivers) count as off — the conservative answer,
    since index-scan lanes would silently degrade to full scans there.
    """
    sites = cluster.sites()
    if not sites:
        return False
    for site in sites:
        engine = getattr(site.driver, "engine", None)
        planner = getattr(engine, "planner", None)
        if planner is None or not getattr(planner, "use_indexes", False):
            return False
    return True


class Partix:
    """Coordinator for distributed XQuery over fragmented repositories."""

    def __init__(
        self,
        cluster: Cluster,
        network: Optional[NetworkModel] = None,
        schema_catalog: Optional[SchemaCatalog] = None,
        distribution_catalog: Optional[DistributionCatalog] = None,
        dispatcher: Optional[ParallelDispatcher] = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        plan_cache: Optional[PlanCache] = None,
        use_indexes: Optional[bool] = None,
        shard_workers: Optional[int] = None,
    ):
        self.cluster = cluster
        #: Intra-site shard worker pool size lowering may assume at every
        #: site. ``None`` (the default) infers it as the minimum over the
        #: cluster's engines (0 when any site has no introspectable
        #: engine), so a plain cluster plans serial lanes exactly as
        #: before. Like index eligibility, this is a ceiling, not a
        #: commitment — lowering prices serial vs sharded per fragment.
        if shard_workers is None:
            shard_workers = _cluster_shard_workers(cluster)
        self.shard_workers = max(0, int(shard_workers))
        #: Are fragment scans *eligible* for the index access path?
        #: ``None`` (the default) infers it from the cluster: eligible
        #: only when every site's engine runs with document indexes on,
        #: so a paper-faithful cluster (indexes off) plans pure
        #: ``FragmentScan`` trees exactly as before. Eligibility is not
        #: commitment — lowering still prices both access paths per
        #: fragment and picks the cheaper one.
        if use_indexes is None:
            use_indexes = _cluster_uses_indexes(cluster)
        self.use_indexes = use_indexes
        #: Optional LRU of logical plans keyed on (query, collection,
        #: catalog version). ``None`` (the default) plans every query
        #: from scratch; the coordinator service passes a shared cache so
        #: repeat queries skip decompose. Hits re-lower against the live
        #: site health, so cached plans still avoid ejected sites.
        self.plan_cache = plan_cache
        #: How many times cached planning retries when a concurrent
        #: catalog replace invalidates the version it read mid-decompose,
        #: before raising :class:`~repro.errors.CatalogContention`.
        self.plan_retry_attempts = 4
        #: Streamed-chunk size: proposed to tcp site servers at connect
        #: time and used verbatim by the in-process chunk emulation and as
        #: the incremental composer's spill threshold.
        self.chunk_bytes = max(1, int(chunk_bytes))
        self.network = network if network is not None else NetworkModel()
        self.dispatcher = (
            dispatcher if dispatcher is not None else ParallelDispatcher()
        )
        #: Shared site-health tracker: the dispatcher reports attempt
        #: outcomes into it, lowering reads it back so new plans avoid
        #: ejected sites. A caller-supplied dispatcher brings its own;
        #: exotic dispatcher substitutes without one get a private
        #: tracker (lowering still works, it just never sees ejections).
        self.site_health = getattr(self.dispatcher, "site_health", None)
        if self.site_health is None:
            from repro.cluster.health import SiteHealth

            self.site_health = SiteHealth()
        self.schema_catalog = (
            schema_catalog if schema_catalog is not None else SchemaCatalog()
        )
        self.distribution_catalog = (
            distribution_catalog
            if distribution_catalog is not None
            else DistributionCatalog()
        )
        self.publisher = DataPublisher(cluster, self.distribution_catalog)
        #: Cost model fed by the catalog's fragment statistics and this
        #: instance's network model; lowering uses it for site selection
        #: and the per-node estimates shown by ``explain``.
        self.cost_model = CostModel(
            self.distribution_catalog,
            self.network,
            shard_workers=self.shard_workers,
        )
        self.decomposer = QueryDecomposer(
            self.distribution_catalog,
            cost_model=self.cost_model,
            site_health=self.site_health,
            use_indexes=self.use_indexes,
        )
        self.composer = ResultComposer()
        self.plan_executor = PlanExecutor(self.composer)
        self._tcp: Optional["TcpSiteCluster"] = None

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def publish(
        self,
        collection: Collection,
        fragmentation: FragmentationSchema,
        allocations: Optional[Sequence[FragmentAllocation]] = None,
        frag_mode: FragMode = FragMode.SINGLE_DOCUMENT,
        verify: bool = False,
        require_homogeneous: bool = True,
        replace: bool = False,
    ) -> PublicationReport:
        """Fragment and distribute a collection (see :class:`DataPublisher`).

        ``replace=True`` republishes over an existing design: data is
        stored before the catalog registration is swapped, and the
        resulting catalog-version bump invalidates cached plans.
        """
        return self.publisher.publish(
            collection,
            fragmentation,
            allocations=allocations,
            frag_mode=frag_mode,
            verify=verify,
            require_homogeneous=require_homogeneous,
            replace=replace,
        )

    def publish_centralized(
        self,
        collection: Collection,
        site_name: str,
        stored_collection: Optional[str] = None,
    ):
        """Store a whole collection at one site (baseline configuration)."""
        return self.publisher.publish_centralized(
            collection, site_name, stored_collection=stored_collection
        )

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: str,
        collection: Optional[str] = None,
        plan: Optional[DecomposedQuery] = None,
        execution_mode: str = "simulated",
        dispatcher: Optional[ParallelDispatcher] = None,
        streaming: bool = False,
        deadline_seconds: Optional[float] = None,
        use_indexes: Optional[bool] = None,
        shard_degree: Optional[int] = None,
    ) -> PartixResult:
        """Run a query over the fragmented repository.

        Without an explicit ``plan``, the automatic decomposer derives one
        from the distribution catalog (our extension); passing a plan
        reproduces the paper's annotated mode ("data location is provided
        along with sub-queries").

        ``execution_mode`` selects how sub-queries run: ``"simulated"``
        executes them sequentially in-process (paper methodology),
        ``"threads"`` dispatches them concurrently — one worker lane per
        site — through ``dispatcher`` (default: this instance's
        :class:`ParallelDispatcher`), and ``"tcp"`` sends them through
        the same dispatcher to real site-server processes (requires
        :meth:`start_tcp`). All modes compose partial results in plan
        order, so the answer is byte-identical.

        ``streaming=True`` routes partial results through the incremental
        composer as :attr:`chunk_bytes`-bounded chunks instead of
        monolithic strings (``execution_mode="tcp-stream"`` is shorthand
        for tcp + streaming); the answer stays byte-identical and the
        round gains ``peak_buffered_bytes``/``first_chunk_seconds``.

        ``deadline_seconds`` bounds this query: it is handed to the
        dispatcher as the round's per-sub-query budget override (lanes
        run in parallel, so it bounds the round's wall time through the
        PR 6 shared-budget machinery). The coordinator threads each
        client's remaining deadline through here.

        ``use_indexes`` is a per-query index override: every dispatched
        sub-query carries it to the executing site, overriding that
        site's own configuration (``False`` = paper-faithful full
        scans everywhere, ``True`` = force index probes). ``None``
        leaves the plan's own per-lane access-path decisions in charge.
        The differential fuzz oracle uses this to run the same plan
        with indexes on and off and assert byte-identical answers.

        ``shard_degree`` is the analogous per-query intra-site override:
        ≥ 2 asks every executing site to shard its sub-query across that
        many workers, 1 (or less) forces serial evaluation everywhere.
        ``None`` leaves lowering's per-lane degree decisions in charge.
        The fuzz ``--shards`` oracle runs the same plan forced-serial and
        forced-sharded and asserts byte-identical answers.
        """
        mode = ExecutionMode.parse(execution_mode, streaming=streaming)
        if plan is None:
            plan = self._plan_for(query, collection)
        plan = plan.with_execution(
            streaming=mode.streaming,
            chunk_bytes=self.chunk_bytes if mode.streaming else None,
        )
        if use_indexes is not None:
            plan = plan.with_lane_indexes(use_indexes)
        if shard_degree is not None:
            plan = plan.with_lane_degree(shard_degree)
        notes = list(plan.notes)
        active = dispatcher if dispatcher is not None else self.dispatcher
        executed = self.plan_executor.run(
            plan,
            self._transport_for(mode),
            active,
            subquery_timeout=deadline_seconds,
        )
        notes.extend(executed.notes)
        round_ = executed.round
        composed = executed.composed
        transmission = self.network.gather_seconds(
            round_.result_sizes,
            query_sizes=[
                len(subquery.query.encode("utf-8"))
                for subquery in plan.subqueries
            ],
        )
        return PartixResult(
            query=query,
            result_text=composed.result_text,
            result_bytes=composed.result_bytes,
            round=round_,
            composed=composed,
            transmission_seconds=transmission,
            plan=plan,
            notes=notes,
        )

    def _plan_for(
        self, query: str, collection: Optional[str]
    ) -> DecomposedQuery:
        """Plan a query, through :attr:`plan_cache` when one is set.

        The cache stores the *logical* plan keyed on the catalog version;
        every execution (hit or miss) re-lowers it against the live cost
        model and site health, so routing decisions — ejected sites,
        replica choice — are always current. A version change observed
        across the decompose (a concurrent republish swapping the design
        mid-read) discards the possibly-mixed plan and retries against
        the new design. The retry loop is bounded by
        :attr:`plan_retry_attempts`: if replaces keep racing planning, a
        typed :class:`~repro.errors.CatalogContention` is raised instead
        of silently planning against a design that may be mixed — the
        caller can retry once the replace storm settles.
        """
        if self.plan_cache is None:
            return self.decomposer.decompose(query, collection)
        catalog = self.distribution_catalog
        for _ in range(self.plan_retry_attempts):
            version = catalog.version
            logical = self.plan_cache.get(query, collection, version)
            if logical is None:
                try:
                    logical = self.decomposer.decompose_logical(
                        query, collection
                    )
                except CatalogError:
                    if catalog.version != version:
                        continue  # design swapped mid-decompose; replan
                    raise
                if catalog.version != version:
                    continue  # may mix old and new designs; replan
                self.plan_cache.put(query, collection, version, logical)
            return lower(
                logical,
                cost_model=self.cost_model,
                site_health=self.site_health,
            )
        raise CatalogContention(
            f"catalog version changed across {self.plan_retry_attempts}"
            f" consecutive planning attempts for query {query!r}"
            " (concurrent replaces/rebalances kept invalidating the"
            " design mid-decompose); retry once the catalog settles"
        )

    def _transport_for(self, mode: ExecutionMode) -> Transport:
        """The Transport a parsed mode runs over — the *only* thing that
        differs between modes; planning, dispatch and composition are
        shared."""
        if mode.transport == "tcp":
            if self._tcp is None:
                raise ClusterError(
                    "execution_mode='tcp' requires running site servers;"
                    " call Partix.start_tcp() first"
                )
            return self._tcp.transport()
        transport: Transport = InProcessTransport(
            self.cluster, chunk_bytes=self.chunk_bytes
        )
        if not mode.concurrent:
            # The paper's sequential "simulated" round: same dispatcher,
            # same lanes, executions serialized behind one lock.
            transport = SerialTransport(transport)
        return transport

    # ------------------------------------------------------------------
    # Real networked sites (execution_mode="tcp")
    # ------------------------------------------------------------------
    def start_tcp(
        self,
        startup_timeout: float = 15.0,
        context=None,
    ) -> "TcpSiteCluster":
        """Spawn one site-server process per cluster site and mirror the
        published data to them.

        Each server runs a private engine configured like its local twin
        (indexes, per-document overhead, cache). Every collection stored
        at a local site is republished to the matching server through
        the driver path — the serialized fragment documents themselves
        travel, so the remote repositories are byte-identical. Idempotent
        until :meth:`stop_tcp`.
        """
        if self._tcp is not None:
            return self._tcp
        from repro.net.bootstrap import (
            TcpSiteCluster,
            engine_config_of,
            mirror_site,
        )

        configs = {
            site.name: engine_config_of(site) for site in self.cluster.sites()
        }
        tcp = TcpSiteCluster.spawn(
            configs,
            startup_timeout=startup_timeout,
            context=context,
            chunk_bytes=self.chunk_bytes,
        )
        try:
            for site in self.cluster.sites():
                mirror_site(site, tcp.clients[site.name])
        except BaseException:
            tcp.shutdown()
            raise
        self._tcp = tcp
        return tcp

    def stop_tcp(self) -> None:
        """Drain and reap the site-server processes (no-op when absent)."""
        if self._tcp is not None:
            self._tcp.shutdown()
            self._tcp = None

    @property
    def tcp(self) -> Optional["TcpSiteCluster"]:
        """The running TCP site cluster, if :meth:`start_tcp` was called."""
        return self._tcp

    def explain(
        self, query: str, collection: Optional[str] = None
    ) -> DecomposedQuery:
        """The physical plan the middleware would execute — lanes, target
        sites, composition and per-node cost estimates — without running
        anything. ``.render()`` formats it as an indented tree."""
        return self.decomposer.decompose(query, collection)

    def execute_centralized(
        self,
        query: str,
        site_name: str,
    ) -> PartixResult:
        """Run a query directly at one site (the centralized baseline)."""
        site = self.cluster.site(site_name)
        started = time.perf_counter()
        result = site.execute(query)
        wall_seconds = time.perf_counter() - started
        round_ = ParallelRound(
            executions=[
                SubQueryExecution(
                    site=site_name,
                    fragment="(centralized)",
                    query=query,
                    result=result,
                    bytes_sent=len(query.encode("utf-8")),
                    bytes_received=result.result_bytes,
                    on_wire=False,
                )
            ],
            measured_wall_seconds=wall_seconds,
        )
        composed = ComposedResult(
            result_text=result.result_text,
            result_bytes=result.result_bytes,
            compose_seconds=0.0,
        )
        transmission = self.network.gather_seconds(
            [result.result_bytes],
            query_sizes=[len(query.encode("utf-8"))],
        )
        return PartixResult(
            query=query,
            result_text=result.result_text,
            result_bytes=result.result_bytes,
            round=round_,
            composed=composed,
            transmission_seconds=transmission,
        )
