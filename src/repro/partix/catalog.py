"""Catalog services (paper §4).

Two catalogs back the PartiX middleware:

* :class:`SchemaCatalog` — "registers the data types used by the
  distributed collections": XML schemas and collection declarations
  ⟨S, τroot, SD|MD⟩.
* :class:`DistributionCatalog` — "stores the fragment definitions": for
  each collection, its :class:`FragmentationSchema` and the *allocation*
  of each fragment to a site (and the physical collection name the
  fragment's documents live under there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.datamodel.collection import RepositoryKind
from repro.errors import CatalogError
from repro.partix.fragments import FragmentationSchema
from repro.xschema.schema import Schema


@dataclass(frozen=True)
class CollectionDeclaration:
    """A registered collection ⟨S, τroot⟩ with its repository kind."""

    name: str
    kind: RepositoryKind
    schema_name: Optional[str] = None
    root_type: Optional[str] = None
    root_label: Optional[str] = None


class SchemaCatalog:
    """XML Schema Catalog Service."""

    def __init__(self) -> None:
        self._schemas: dict[str, Schema] = {}
        self._collections: dict[str, CollectionDeclaration] = {}

    def register_schema(self, schema: Schema) -> None:
        if schema.name in self._schemas:
            raise CatalogError(f"schema {schema.name!r} already registered")
        self._schemas[schema.name] = schema

    def schema(self, name: str) -> Schema:
        try:
            return self._schemas[name]
        except KeyError:
            raise CatalogError(f"no schema named {name!r}") from None

    def register_collection(self, declaration: CollectionDeclaration) -> None:
        if declaration.name in self._collections:
            raise CatalogError(
                f"collection {declaration.name!r} already registered"
            )
        if declaration.schema_name is not None:
            self.schema(declaration.schema_name)  # must exist
        self._collections[declaration.name] = declaration

    def collection(self, name: str) -> CollectionDeclaration:
        try:
            return self._collections[name]
        except KeyError:
            raise CatalogError(f"no collection named {name!r}") from None

    def has_collection(self, name: str) -> bool:
        return name in self._collections

    def collection_names(self) -> list[str]:
        return list(self._collections)


@dataclass(frozen=True)
class FragmentStatistics:
    """Planner statistics of one materialized fragment replica.

    Recorded by the data publisher when a fragment is stored (documents
    materialized, serialized bytes on disk); the cost model turns them
    into per-lane estimates, so planning never has to touch a site.
    """

    documents: int
    bytes: int


@dataclass(frozen=True)
class FragmentAllocation:
    """Where one fragment physically lives.

    ``hybrid_mode`` records the materialization of hybrid fragments
    (1 = independent documents, 2 = single pruned document); the query
    decomposer needs it to know the shape of the stored documents.
    """

    fragment: str
    site: str
    stored_collection: str
    hybrid_mode: int = 2


class DistributionCatalog:
    """XML Distribution Catalog Service: fragmentation + allocation.

    A fragment may be allocated to several sites (replicas) — the design
    option the paper's related work (Bremer & Gertz) uses to "maximize
    local query evaluation". The first allocation of a fragment is its
    *primary*; :meth:`replicas` exposes all of them so the decomposer can
    balance sub-queries across replica sites.
    """

    def __init__(self) -> None:
        self._fragmentations: dict[str, FragmentationSchema] = {}
        self._allocations: dict[str, dict[str, list[FragmentAllocation]]] = {}
        self._statistics: dict[tuple[str, str, str], FragmentStatistics] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every design change (register,
        replace, unregister). Plan caches key on it: a cached plan is
        only valid for the catalog state it was derived from, so a
        republish invalidates every entry for the old design."""
        return self._version

    # ------------------------------------------------------------------
    @staticmethod
    def validate_allocations(
        fragmentation: FragmentationSchema,
        allocations: Iterable[FragmentAllocation],
    ) -> dict[str, list[FragmentAllocation]]:
        """Check an allocation set against a design; returns the
        per-fragment allocation map (primary first).

        Every fragment must be allocated at least once; several
        allocations of one fragment declare replicas (each on a distinct
        site). Exposed so the publisher can validate a *replacement*
        design before any data moves.
        """
        allocation_map: dict[str, list[FragmentAllocation]] = {}
        for allocation in allocations:
            fragmentation.fragment(allocation.fragment)  # must exist
            existing = allocation_map.setdefault(allocation.fragment, [])
            if any(entry.site == allocation.site for entry in existing):
                raise CatalogError(
                    f"fragment {allocation.fragment!r} allocated twice"
                    f" on site {allocation.site!r}"
                )
            existing.append(allocation)
        missing = set(fragmentation.fragment_names()) - set(allocation_map)
        if missing:
            raise CatalogError(
                f"fragments without allocation: {', '.join(sorted(missing))}"
            )
        return allocation_map

    def register_fragmentation(
        self,
        fragmentation: FragmentationSchema,
        allocations: Iterable[FragmentAllocation],
        replace: bool = False,
    ) -> None:
        """Register a fragmentation design with its site allocation.

        With ``replace=True`` an existing registration for the same
        collection is swapped out atomically (one assignment per dict, so
        a concurrent reader sees either the old design or the new one,
        never a mix) and the catalog version is bumped.
        """
        name = fragmentation.collection
        if name in self._fragmentations and not replace:
            raise CatalogError(
                f"collection {name!r} already has a fragmentation"
            )
        allocation_map = self.validate_allocations(fragmentation, allocations)
        self._fragmentations[name] = fragmentation
        self._allocations[name] = allocation_map
        self._version += 1

    def unregister(self, collection: str) -> None:
        self._fragmentations.pop(collection, None)
        self._allocations.pop(collection, None)
        for key in [k for k in self._statistics if k[0] == collection]:
            del self._statistics[key]
        self._version += 1

    # ------------------------------------------------------------------
    def record_statistics(
        self,
        collection: str,
        fragment: str,
        site: str,
        documents: int,
        data_bytes: int,
    ) -> None:
        """Record (or refresh) one fragment replica's planner statistics."""
        self._statistics[(collection, fragment, site)] = FragmentStatistics(
            documents=documents, bytes=data_bytes
        )

    def statistics(
        self, collection: str, fragment: str, site: str
    ) -> Optional[FragmentStatistics]:
        """The replica's statistics, or None when never published here."""
        return self._statistics.get((collection, fragment, site))

    # ------------------------------------------------------------------
    def fragmentation(self, collection: str) -> FragmentationSchema:
        try:
            return self._fragmentations[collection]
        except KeyError:
            raise CatalogError(
                f"collection {collection!r} has no registered fragmentation"
            ) from None

    def is_fragmented(self, collection: str) -> bool:
        return collection in self._fragmentations

    def allocation(self, collection: str, fragment: str) -> FragmentAllocation:
        """The fragment's *primary* allocation."""
        return self.replicas(collection, fragment)[0]

    def replicas(self, collection: str, fragment: str) -> list[FragmentAllocation]:
        """All allocations (primary first) of one fragment."""
        try:
            return list(self._allocations[collection][fragment])
        except KeyError:
            raise CatalogError(
                f"no allocation for fragment {fragment!r} of {collection!r}"
            ) from None

    def allocations(self, collection: str) -> list[FragmentAllocation]:
        """Every allocation (including replicas), fragment order preserved."""
        try:
            return [
                allocation
                for entries in self._allocations[collection].values()
                for allocation in entries
            ]
        except KeyError:
            raise CatalogError(
                f"collection {collection!r} has no registered fragmentation"
            ) from None

    def fragmented_collections(self) -> list[str]:
        return list(self._fragmentations)
