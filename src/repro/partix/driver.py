"""The PartiX driver: a uniform interface to XQuery-enabled XML DBMSs.

§4: "Our architecture considers that there is a PartiX Driver, which
allows accessing remote DBMSs to store and retrieve XML documents. ...
The PartiX driver allows different XML DBMSs to participate in the
system. The only requirement is that they are able to process XQuery."

:class:`PartixDriver` is the abstract interface; :class:`MiniXDriver`
adapts our embedded engine (the eXist stand-in). A driver for a real
remote DBMS would implement the same five methods over its wire protocol.
"""

from __future__ import annotations

import abc
from typing import Optional, Union

from repro.datamodel.document import XMLDocument
from repro.engine.database import XMLEngine
from repro.engine.stats import QueryResult
from repro.paths.predicates import Predicate


class PartixDriver(abc.ABC):
    """Uniform access to one XML DBMS node."""

    @abc.abstractmethod
    def create_collection(self, name: str) -> None:
        """Create an empty collection (idempotent)."""

    @abc.abstractmethod
    def store_document(
        self,
        collection: str,
        document: Union[XMLDocument, str, bytes],
        name: Optional[str] = None,
        origin: Optional[str] = None,
    ) -> None:
        """Store one document into ``collection``."""

    @abc.abstractmethod
    def execute(
        self,
        query: str,
        default_collection: Optional[str] = None,
        extra_predicate: Optional[Predicate] = None,
        use_indexes: Optional[bool] = None,
        parallel_degree: Optional[int] = None,
    ) -> QueryResult:
        """Run an XQuery and return its result + execution metrics.

        ``use_indexes`` overrides the DBMS's index configuration for this
        one query (``None`` leaves the node's own setting in charge) —
        how an ``index-scan`` plan lane reaches the executing site.
        ``parallel_degree`` ≥ 2 asks the node to evaluate the query
        sharded across that many local workers — a request the node may
        decline (no pool, non-shardable query); answers are
        byte-identical either way.
        """

    @abc.abstractmethod
    def document_count(self, collection: str) -> int:
        """Number of documents in ``collection``.

        Contract: a missing collection is **0 documents**, not an error —
        the middleware probes sites that may simply not host a fragment.
        (The engine layer underneath is strict and raises; the driver is
        the lenient boundary.)
        """

    @abc.abstractmethod
    def collection_bytes(self, collection: str) -> int:
        """Total serialized size of ``collection``.

        Contract: a missing collection is **0 bytes** (see
        :meth:`document_count`).
        """

    def collection_statistics(self, collection: str) -> tuple[int, int]:
        """``(documents, bytes)`` of a stored collection in one call.

        The data publisher records these in the distribution catalog as
        planner statistics (see ``DistributionCatalog.record_statistics``);
        drivers for remote DBMSs may override this with a single wire
        round-trip. Inherits the lenient missing-collection contract:
        ``(0, 0)`` rather than an error.
        """
        return (
            self.document_count(collection),
            self.collection_bytes(collection),
        )

    def execute_iter(
        self,
        query: str,
        default_collection: Optional[str] = None,
        extra_predicate: Optional[Predicate] = None,
        use_indexes: Optional[bool] = None,
        parallel_degree: Optional[int] = None,
    ):
        """Run an XQuery as a stream of serialized result pieces.

        Returns an iterable of strings whose ``"\\n"``-join is exactly
        the query's serialized answer, with a ``result`` attribute (a
        :class:`QueryResult`) available once iteration completes. The
        base implementation materializes through :meth:`execute` and
        yields the whole text as one piece — correct for any driver;
        engine-backed drivers override it with true per-item streaming.
        """
        return _MaterializedStream(
            self.execute(
                query,
                default_collection=default_collection,
                extra_predicate=extra_predicate,
                use_indexes=use_indexes,
                parallel_degree=parallel_degree,
            )
        )


class _MaterializedStream:
    """``execute_iter`` fallback: the whole result as a single piece."""

    def __init__(self, result: QueryResult):
        self.result = result

    def __iter__(self):
        if self.result.result_text:
            yield self.result.result_text


class MiniXDriver(PartixDriver):
    """Driver over the embedded MiniX engine."""

    def __init__(self, engine: Optional[XMLEngine] = None, name: str = "minix"):
        self.engine = engine if engine is not None else XMLEngine(name)

    def create_collection(self, name: str) -> None:
        if not self.engine.has_collection(name):
            self.engine.create_collection(name)

    def store_document(
        self,
        collection: str,
        document: Union[XMLDocument, str, bytes],
        name: Optional[str] = None,
        origin: Optional[str] = None,
    ) -> None:
        self.engine.store_document(collection, document, name=name, origin=origin)

    def execute(
        self,
        query: str,
        default_collection: Optional[str] = None,
        extra_predicate: Optional[Predicate] = None,
        use_indexes: Optional[bool] = None,
        parallel_degree: Optional[int] = None,
    ) -> QueryResult:
        return self.engine.execute(
            query,
            default_collection=default_collection,
            extra_predicate=extra_predicate,
            use_indexes=use_indexes,
            parallel_degree=parallel_degree,
        )

    def execute_iter(
        self,
        query: str,
        default_collection: Optional[str] = None,
        extra_predicate: Optional[Predicate] = None,
        use_indexes: Optional[bool] = None,
        parallel_degree: Optional[int] = None,
    ):
        return self.engine.execute_iter(
            query,
            default_collection=default_collection,
            extra_predicate=extra_predicate,
            use_indexes=use_indexes,
            parallel_degree=parallel_degree,
        )

    def document_count(self, collection: str) -> int:
        if not self.engine.has_collection(collection):
            return 0
        return self.engine.document_count(collection)

    def collection_bytes(self, collection: str) -> int:
        if not self.engine.has_collection(collection):
            return 0
        return self.engine.collection_bytes(collection)
