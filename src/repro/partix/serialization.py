"""JSON (de)serialization of fragmentation designs.

A deployed PartiX instance must survive restarts: the distribution
catalog's fragment definitions and allocations are plain data, so they
round-trip through JSON. This module serializes the whole predicate and
fragment languages:

* predicates — every node of the §3.1 predicate grammar;
* fragments — Definitions 1-4 with prunes/units/stub flags;
* designs — a :class:`FragmentationSchema` plus its allocations.

``save_design``/``load_design`` write and read a single JSON file;
``design_to_dict``/``design_from_dict`` expose the intermediate form for
embedding in larger configuration documents.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import FragmentationError
from repro.partix.catalog import FragmentAllocation
from repro.partix.fragments import (
    FragmentDefinition,
    FragmentationSchema,
    HorizontalFragment,
    HybridFragment,
    VerticalFragment,
)
from repro.paths.parser import parse_path
from repro.paths.predicates import (
    And,
    Comparison,
    Contains,
    Empty,
    Exists,
    FunctionComparison,
    Not,
    Or,
    Predicate,
    StartsWith,
    TruePredicate,
)


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
def predicate_to_dict(predicate: Predicate) -> dict:
    """Structured form of any predicate of the §3.1 grammar."""
    if isinstance(predicate, Comparison):
        return {
            "type": "comparison",
            "path": str(predicate.path),
            "op": predicate.op,
            "value": predicate.value,
        }
    if isinstance(predicate, FunctionComparison):
        return {
            "type": "function-comparison",
            "function": predicate.function,
            "path": str(predicate.path),
            "op": predicate.op,
            "value": predicate.value,
        }
    if isinstance(predicate, Contains):
        return {
            "type": "contains",
            "path": str(predicate.path),
            "needle": predicate.needle,
        }
    if isinstance(predicate, StartsWith):
        return {
            "type": "starts-with",
            "path": str(predicate.path),
            "prefix": predicate.prefix,
        }
    if isinstance(predicate, Exists):
        return {"type": "exists", "path": str(predicate.path)}
    if isinstance(predicate, Empty):
        return {"type": "empty", "path": str(predicate.path)}
    if isinstance(predicate, Not):
        return {"type": "not", "inner": predicate_to_dict(predicate.inner)}
    if isinstance(predicate, And):
        return {
            "type": "and",
            "parts": [predicate_to_dict(part) for part in predicate.parts],
        }
    if isinstance(predicate, Or):
        return {
            "type": "or",
            "parts": [predicate_to_dict(part) for part in predicate.parts],
        }
    if isinstance(predicate, TruePredicate):
        return {"type": "true"}
    raise FragmentationError(
        f"cannot serialize predicate type {type(predicate).__name__}"
    )


def predicate_from_dict(data: dict) -> Predicate:
    """Inverse of :func:`predicate_to_dict`."""
    kind = data.get("type")
    if kind == "comparison":
        return Comparison(parse_path(data["path"]), data["op"], data["value"])
    if kind == "function-comparison":
        return FunctionComparison(
            data["function"], parse_path(data["path"]), data["op"], data["value"]
        )
    if kind == "contains":
        return Contains(parse_path(data["path"]), data["needle"])
    if kind == "starts-with":
        return StartsWith(parse_path(data["path"]), data["prefix"])
    if kind == "exists":
        return Exists(parse_path(data["path"]))
    if kind == "empty":
        return Empty(parse_path(data["path"]))
    if kind == "not":
        return Not(predicate_from_dict(data["inner"]))
    if kind == "and":
        return And(tuple(predicate_from_dict(part) for part in data["parts"]))
    if kind == "or":
        return Or(tuple(predicate_from_dict(part) for part in data["parts"]))
    if kind == "true":
        return TruePredicate()
    raise FragmentationError(f"unknown predicate type {kind!r}")


# ----------------------------------------------------------------------
# Fragments
# ----------------------------------------------------------------------
def fragment_to_dict(fragment: FragmentDefinition) -> dict:
    if isinstance(fragment, HorizontalFragment):
        return {
            "kind": "horizontal",
            "name": fragment.name,
            "collection": fragment.collection,
            "predicate": predicate_to_dict(fragment.predicate),
        }
    if isinstance(fragment, VerticalFragment):
        return {
            "kind": "vertical",
            "name": fragment.name,
            "collection": fragment.collection,
            "path": str(fragment.path),
            "prune": [str(p) for p in fragment.prune],
            "stub_prunes": fragment.stub_prunes,
        }
    if isinstance(fragment, HybridFragment):
        return {
            "kind": "hybrid",
            "name": fragment.name,
            "collection": fragment.collection,
            "path": str(fragment.path),
            "unit_label": fragment.unit_label,
            "predicate": (
                predicate_to_dict(fragment.predicate)
                if fragment.predicate is not None
                else None
            ),
            "prune": [str(p) for p in fragment.prune],
        }
    raise FragmentationError(
        f"cannot serialize fragment type {type(fragment).__name__}"
    )


def fragment_from_dict(data: dict) -> FragmentDefinition:
    kind = data.get("kind")
    if kind == "horizontal":
        return HorizontalFragment(
            data["name"],
            data["collection"],
            predicate=predicate_from_dict(data["predicate"]),
        )
    if kind == "vertical":
        return VerticalFragment(
            data["name"],
            data["collection"],
            path=data["path"],
            prune=tuple(data.get("prune", ())),
            stub_prunes=data.get("stub_prunes", False),
        )
    if kind == "hybrid":
        predicate = data.get("predicate")
        return HybridFragment(
            data["name"],
            data["collection"],
            path=data["path"],
            unit_label=data["unit_label"],
            predicate=(
                predicate_from_dict(predicate) if predicate is not None else None
            ),
            prune=tuple(data.get("prune", ())),
        )
    raise FragmentationError(f"unknown fragment kind {kind!r}")


# ----------------------------------------------------------------------
# Whole designs
# ----------------------------------------------------------------------
def design_to_dict(
    fragmentation: FragmentationSchema,
    allocations: Optional[Sequence[FragmentAllocation]] = None,
) -> dict:
    return {
        "collection": fragmentation.collection,
        "root_label": fragmentation.root_label,
        "fragments": [fragment_to_dict(f) for f in fragmentation.fragments],
        "allocations": [
            {
                "fragment": a.fragment,
                "site": a.site,
                "stored_collection": a.stored_collection,
                "hybrid_mode": a.hybrid_mode,
            }
            for a in (allocations or ())
        ],
    }


def design_from_dict(
    data: dict,
) -> tuple[FragmentationSchema, list[FragmentAllocation]]:
    fragmentation = FragmentationSchema(
        data["collection"],
        [fragment_from_dict(f) for f in data["fragments"]],
        root_label=data.get("root_label"),
    )
    allocations = [
        FragmentAllocation(
            fragment=a["fragment"],
            site=a["site"],
            stored_collection=a["stored_collection"],
            hybrid_mode=a.get("hybrid_mode", 2),
        )
        for a in data.get("allocations", ())
    ]
    return fragmentation, allocations


def save_design(
    path: str | Path,
    fragmentation: FragmentationSchema,
    allocations: Optional[Sequence[FragmentAllocation]] = None,
) -> None:
    """Write a design (fragments + allocations) to a JSON file."""
    Path(path).write_text(
        json.dumps(design_to_dict(fragmentation, allocations), indent=2)
    )


def load_design(
    path: str | Path,
) -> tuple[FragmentationSchema, list[FragmentAllocation]]:
    """Read a design previously written by :func:`save_design`."""
    return design_from_dict(json.loads(Path(path).read_text()))
