"""Result composition (paper §3.3/§4).

"PartiX gathers the results of the sub-queries and reconstructs the query
answer." Three composition kinds exist, matching the reconstruction
operator of each fragmentation type:

* ``concat`` — horizontal/hybrid value streams: partial results union
  (document-order within each fragment is preserved; cross-fragment order
  follows the catalog's fragment order, and a final ``order by`` in the
  original query is re-applied when its key is extractable).
* ``aggregate`` — merge partial aggregates: ``count``/``sum`` add up,
  ``min``/``max`` fold, ``avg`` recombines shipped (sum, count) pairs,
  ``exists``/``empty`` fold shipped booleans with any/all.
* ``reconstruct`` — the expensive vertical path: parse the fetched
  fragment documents, group them by their ``pxorigin`` join key, ID-join
  each group back into source documents, load them into a scratch engine
  under the original collection name, and re-run the original query.

Two composition *modes* share those kinds. The monolithic
:meth:`ResultComposer.compose` takes every partial as a finished string.
The streaming :class:`IncrementalComposer` (built by
:meth:`ResultComposer.incremental`) is a *chunk sink* fed by the
dispatcher while sub-queries are still running: ``concat`` lanes append
to per-fragment :class:`SpillBuffer`\\ s (bounded memory, catalog
fragment order restored at :meth:`~IncrementalComposer.finish`),
``aggregate`` lanes parse their scalar partials at arrival and fold them
*in plan order* at finish — sharing :func:`fold_aggregate_values` with
the monolithic path so float summation order, and therefore the answer
bytes, are identical no matter which lane finished first.
"""

from __future__ import annotations

import re
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.algebra.annotations import PXPARENT, read_annotation, read_origin
from repro.algebra.join import reconstruct_documents
from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import NodeKind, XMLNode
from repro.engine.database import XMLEngine, serialize_sequence
from repro.errors import DecompositionError
from repro.net.protocol import DEFAULT_CHUNK_BYTES
from repro.plan.spec import CompositionSpec, SubQuery
from repro.xmltext.parser import parse_forest


@dataclass
class ComposedResult:
    """Final answer plus the composition's own cost."""

    result_text: str
    result_bytes: int
    compose_seconds: float
    items: Optional[list] = None


class ResultComposer:
    """Combines partial sub-query results into the final answer."""

    def compose(
        self,
        spec: CompositionSpec,
        partials: list[tuple[SubQuery, str]],
    ) -> ComposedResult:
        """``partials`` pairs each sub-query with its serialized result."""
        started = time.perf_counter()
        if spec.kind == "concat":
            text = self._concat(partials)
            items = None
        elif spec.kind == "aggregate":
            text, items = self._aggregate(spec, partials)
        elif spec.kind == "reconstruct":
            text, items = self._reconstruct(spec, partials)
        else:
            raise DecompositionError(f"unknown composition kind {spec.kind!r}")
        elapsed = time.perf_counter() - started
        return ComposedResult(
            result_text=text,
            result_bytes=len(text.encode("utf-8")),
            compose_seconds=elapsed,
            items=items,
        )

    # ------------------------------------------------------------------
    def _concat(self, partials: list[tuple[SubQuery, str]]) -> str:
        chunks = [strip_annotation_text(text) for _, text in partials if text]
        return "\n".join(chunk for chunk in chunks if chunk)

    # ------------------------------------------------------------------
    def _aggregate(
        self, spec: CompositionSpec, partials: list[tuple[SubQuery, str]]
    ) -> tuple[str, list]:
        op = spec.aggregate
        values = [parse_aggregate_partial(op, text) for _, text in partials]
        return fold_aggregate_values(op, values)

    # ------------------------------------------------------------------
    def _reconstruct(
        self, spec: CompositionSpec, partials: list[tuple[SubQuery, str]]
    ) -> tuple[str, list]:
        if spec.original_query is None or spec.source_collection is None:
            raise DecompositionError(
                "reconstruct composition needs the original query and"
                " collection"
            )
        parts: list[XMLDocument] = []
        for subquery, text in partials:
            for root in parse_forest(text):
                parts.extend(_extract_parts(root))
        rebuilt = reconstruct_documents(parts, root_label=spec.root_label)
        scratch = XMLEngine("compose-scratch")
        scratch.create_collection(spec.source_collection)
        for document in rebuilt:
            scratch.store_document(
                spec.source_collection, document, name=document.name
            )
        result = scratch.execute(spec.original_query)
        return result.result_text, result.items

    # ------------------------------------------------------------------
    def incremental(
        self,
        spec: CompositionSpec,
        subqueries: Sequence[SubQuery],
        spill_threshold: int = DEFAULT_CHUNK_BYTES,
    ) -> "IncrementalComposer":
        """A chunk sink composing ``subqueries``' streamed partials.

        Feed it to :meth:`ParallelDispatcher.dispatch` as ``chunk_sink``;
        call :meth:`IncrementalComposer.finish` once the round returns.
        """
        return IncrementalComposer(
            spec, subqueries, spill_threshold=spill_threshold
        )


# ----------------------------------------------------------------------
# Shared aggregate folding (monolithic and incremental paths)
# ----------------------------------------------------------------------
def parse_aggregate_partial(op: str, text: str) -> list:
    """Parse one fragment's shipped partial-aggregate result.

    Numeric aggregates ship whitespace-separated numbers (``avg`` ships
    a ``(sum, count)`` pair); ``exists``/``empty`` ship one xs:boolean
    token (``true``/``false``).
    """
    if op in ("exists", "empty"):
        return [token == "true" for token in text.split() if token]
    return [float(token) for token in text.split() if token]


def fold_aggregate_values(op: str, values: list[list]) -> tuple[str, list]:
    """Fold parsed partials (plan order!) into the final answer text.

    Both composition modes call this with the partials in plan order, so
    order-sensitive folds (float ``sum``) produce identical bytes no
    matter when each lane's partial actually arrived.
    """
    if op == "count" or op == "sum":
        total = sum(v[0] for v in values if v)
        if op == "count":
            return str(int(total)), [int(total)]
        return _format_number(total), [total]
    if op == "min":
        candidates = [v[0] for v in values if v]
        if not candidates:
            return "", []
        result = min(candidates)
        return _format_number(result), [result]
    if op == "max":
        candidates = [v[0] for v in values if v]
        if not candidates:
            return "", []
        result = max(candidates)
        return _format_number(result), [result]
    if op == "avg":
        # Each partial shipped (sum, count).
        total = sum(v[0] for v in values if len(v) >= 2)
        count = sum(v[1] for v in values if len(v) >= 2)
        if count == 0:
            return "", []
        result = total / count
        return _format_number(result), [result]
    if op == "exists":
        # Any fragment holding a match decides; no fragments (all pruned)
        # means no match anywhere — exactly centralized exists() on an
        # empty sequence.
        result = any(v[0] for v in values if v)
        return ("true" if result else "false"), [result]
    if op == "empty":
        result = all(v[0] for v in values if v)
        return ("true" if result else "false"), [result]
    raise DecompositionError(f"unknown aggregate {op!r}")


class SpillBuffer:
    """Byte accumulator with bounded memory: spills to a temp file.

    Chunks append in memory until ``threshold`` bytes, then the whole
    buffer moves to an anonymous temporary file and later chunks go
    straight to disk — so a coordinator lane buffering a huge fragment
    result holds at most ~``threshold`` bytes in memory (the metric
    :attr:`IncrementalComposer.peak_buffered_bytes` audits).
    """

    def __init__(self, threshold: int = DEFAULT_CHUNK_BYTES):
        self.threshold = max(1, int(threshold))
        self._memory = bytearray()
        self._file = None
        self.total_bytes = 0

    @property
    def memory_bytes(self) -> int:
        return len(self._memory)

    def write(self, data: bytes) -> None:
        self.total_bytes += len(data)
        if self._file is not None:
            self._file.write(data)
            return
        self._memory += data
        if len(self._memory) > self.threshold:
            self._file = tempfile.TemporaryFile(prefix="partix-spill-")
            self._file.write(self._memory)
            self._memory = bytearray()

    def getvalue(self) -> bytes:
        """Every byte written so far, in order."""
        if self._file is None:
            return bytes(self._memory)
        self._file.seek(0)
        data = self._file.read()
        self._file.seek(0, 2)
        return data

    def release(self) -> None:
        """Drop memory and close the spill file (idempotent)."""
        self._memory = bytearray()
        if self._file is not None:
            self._file.close()
            self._file = None


class IncrementalComposer:
    """Streaming composition: a chunk sink with a plan-order finish.

    The dispatcher protocol (see
    :meth:`~repro.cluster.dispatch.ParallelDispatcher.dispatch`):

    * ``begin(i)`` — called before *every* attempt of sub-query ``i``;
      resets the lane so a retried attempt never keeps stale bytes;
    * ``chunk(i, data)`` — one streamed byte slice for lane ``i``
      (slices concatenate to the lane's full UTF-8 answer; a slice may
      end mid-way through a multi-byte character — lanes decode only at
      completion);
    * ``complete(i)`` — lane ``i``'s bytes are final (the attempt was
      accepted). Only completed lanes contribute to the answer, matching
      the degrade policy's dropped-fragment semantics.

    ``finish()`` composes in **plan order** regardless of arrival order,
    and for ``aggregate`` reuses :func:`fold_aggregate_values` — so the
    answer is byte-identical to the monolithic composer's.

    Thread safety: every method takes the sink lock; lanes are touched
    by one dispatcher thread at a time, the lock makes cross-lane
    bookkeeping (peak bytes, first-chunk time) coherent.
    """

    def __init__(
        self,
        spec: CompositionSpec,
        subqueries: Sequence[SubQuery],
        spill_threshold: int = DEFAULT_CHUNK_BYTES,
    ):
        self.spec = spec
        self.subqueries = list(subqueries)
        self.spill_threshold = spill_threshold
        self._lock = threading.Lock()
        self._created = time.perf_counter()
        self._buffers: dict[int, SpillBuffer] = {}
        self._values: dict[int, list] = {}
        self._completed: set[int] = set()
        #: Peak bytes held in coordinator memory across all lane buffers
        #: (spilled bytes excluded — they are on disk by design).
        self.peak_buffered_bytes = 0
        #: Seconds from sink creation to the first chunk of any lane.
        self.time_to_first_chunk: Optional[float] = None
        self.chunks_received = 0
        self.bytes_received = 0

    # -- chunk-sink protocol -------------------------------------------
    def begin(self, index: int) -> None:
        with self._lock:
            stale = self._buffers.pop(index, None)
            if stale is not None:
                stale.release()
            self._values.pop(index, None)
            self._completed.discard(index)
            self._buffers[index] = SpillBuffer(self.spill_threshold)

    def chunk(self, index: int, data: bytes) -> None:
        with self._lock:
            if self.time_to_first_chunk is None:
                self.time_to_first_chunk = (
                    time.perf_counter() - self._created
                )
            buffer = self._buffers.get(index)
            if buffer is None:  # tolerate a sink driven without begin()
                buffer = SpillBuffer(self.spill_threshold)
                self._buffers[index] = buffer
            buffer.write(data)
            self.chunks_received += 1
            self.bytes_received += len(data)
            in_memory = sum(b.memory_bytes for b in self._buffers.values())
            if in_memory > self.peak_buffered_bytes:
                self.peak_buffered_bytes = in_memory

    def complete(self, index: int) -> None:
        with self._lock:
            self._completed.add(index)
            if self.spec.kind == "aggregate":
                # Parse the scalar partial now and drop its bytes — the
                # aggregate path never holds lane text to the end.
                buffer = self._buffers.pop(index, None)
                text = ""
                if buffer is not None:
                    text = buffer.getvalue().decode("utf-8")
                    buffer.release()
                self._values[index] = parse_aggregate_partial(
                    self.spec.aggregate, text
                )

    # -- final composition ---------------------------------------------
    def _lane_text(self, index: int) -> str:
        buffer = self._buffers.get(index)
        if buffer is None:
            return ""
        return buffer.getvalue().decode("utf-8")

    def finish(self) -> ComposedResult:
        """Compose the completed lanes (plan order) into the answer."""
        started = time.perf_counter()
        with self._lock:
            order = [
                index
                for index in range(len(self.subqueries))
                if index in self._completed
            ]
            if self.spec.kind == "concat":
                chunks = [
                    strip_annotation_text(text)
                    for text in (self._lane_text(index) for index in order)
                    if text
                ]
                text = "\n".join(chunk for chunk in chunks if chunk)
                items = None
            elif self.spec.kind == "aggregate":
                values = [self._values.get(index, []) for index in order]
                text, items = fold_aggregate_values(
                    self.spec.aggregate, values
                )
            elif self.spec.kind == "reconstruct":
                partials = [
                    (self.subqueries[index], self._lane_text(index))
                    for index in order
                ]
                text, items = ResultComposer()._reconstruct(
                    self.spec, partials
                )
            else:
                raise DecompositionError(
                    f"unknown composition kind {self.spec.kind!r}"
                )
            for buffer in self._buffers.values():
                buffer.release()
            self._buffers.clear()
        elapsed = time.perf_counter() - started
        return ComposedResult(
            result_text=text,
            result_bytes=len(text.encode("utf-8")),
            compose_seconds=elapsed,
            items=items,
        )


_ANNOTATION_RE = re.compile(
    r'\s+(?:pxid|pxparent)="\d+"|\s+pxorigin="[^"]*"'
)


def strip_annotation_text(text: str) -> str:
    """Remove reconstruction annotations from serialized results.

    The annotation names are reserved by this library (see
    :mod:`repro.algebra.annotations`), so the textual strip is safe for
    any document the publisher produced; it avoids re-parsing what may be
    a large value stream just to drop three attributes.
    """
    return _ANNOTATION_RE.sub("", text)


def _extract_parts(root: XMLNode) -> list[XMLDocument]:
    """Turn one fetched fragment document into join parts.

    * a root with ``pxparent`` is itself one part (vertical projection or
      hybrid FragMode1 unit);
    * a FragMode2 wrapper (chain document) contributes every descendant
      carrying ``pxparent``;
    * anything else (a remainder/skeleton document) is one part as-is.

    Each part's origin comes from its own ``pxorigin`` or the enclosing
    root's.
    """
    origin = read_origin(root)
    if read_annotation(root, PXPARENT) is not None:
        return [_as_part(root, origin)]
    inner = [
        node
        for node in root.descendants()
        if node.kind is NodeKind.ELEMENT
        and read_annotation(node, PXPARENT) is not None
    ]
    if inner:
        # Keep only the outermost annotated nodes (grafts are subtrees).
        outermost = [
            node
            for node in inner
            if not any(parent in inner for parent in node.ancestors())
        ]
        return [_as_part(node, read_origin(node) or origin) for node in outermost]
    return [_as_part(root, origin)]


def _as_part(node: XMLNode, origin: Optional[str]) -> XMLDocument:
    detached = node.clone(deep=True)
    return XMLDocument(detached, name=None, assign_ids=False, origin=origin)


def _format_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(value)
