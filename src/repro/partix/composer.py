"""Result composition (paper §3.3/§4).

"PartiX gathers the results of the sub-queries and reconstructs the query
answer." Three composition kinds exist, matching the reconstruction
operator of each fragmentation type:

* ``concat`` — horizontal/hybrid value streams: partial results union
  (document-order within each fragment is preserved; cross-fragment order
  follows the catalog's fragment order, and a final ``order by`` in the
  original query is re-applied when its key is extractable).
* ``aggregate`` — merge partial aggregates: ``count``/``sum`` add up,
  ``min``/``max`` fold, ``avg`` recombines shipped (sum, count) pairs.
* ``reconstruct`` — the expensive vertical path: parse the fetched
  fragment documents, group them by their ``pxorigin`` join key, ID-join
  each group back into source documents, load them into a scratch engine
  under the original collection name, and re-run the original query.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import Optional

from repro.algebra.annotations import PXPARENT, read_annotation, read_origin
from repro.algebra.join import reconstruct_documents
from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import NodeKind, XMLNode
from repro.engine.database import XMLEngine, serialize_sequence
from repro.errors import DecompositionError
from repro.partix.decomposer import CompositionSpec, SubQuery
from repro.xmltext.parser import parse_forest


@dataclass
class ComposedResult:
    """Final answer plus the composition's own cost."""

    result_text: str
    result_bytes: int
    compose_seconds: float
    items: Optional[list] = None


class ResultComposer:
    """Combines partial sub-query results into the final answer."""

    def compose(
        self,
        spec: CompositionSpec,
        partials: list[tuple[SubQuery, str]],
    ) -> ComposedResult:
        """``partials`` pairs each sub-query with its serialized result."""
        started = time.perf_counter()
        if spec.kind == "concat":
            text = self._concat(partials)
            items = None
        elif spec.kind == "aggregate":
            text, items = self._aggregate(spec, partials)
        elif spec.kind == "reconstruct":
            text, items = self._reconstruct(spec, partials)
        else:
            raise DecompositionError(f"unknown composition kind {spec.kind!r}")
        elapsed = time.perf_counter() - started
        return ComposedResult(
            result_text=text,
            result_bytes=len(text.encode("utf-8")),
            compose_seconds=elapsed,
            items=items,
        )

    # ------------------------------------------------------------------
    def _concat(self, partials: list[tuple[SubQuery, str]]) -> str:
        chunks = [strip_annotation_text(text) for _, text in partials if text]
        return "\n".join(chunk for chunk in chunks if chunk)

    # ------------------------------------------------------------------
    def _aggregate(
        self, spec: CompositionSpec, partials: list[tuple[SubQuery, str]]
    ) -> tuple[str, list]:
        values: list[list[float]] = []
        for _, text in partials:
            numbers = [float(token) for token in text.split() if token]
            values.append(numbers)
        op = spec.aggregate
        if op == "count" or op == "sum":
            total = sum(v[0] for v in values if v)
            if op == "count":
                return str(int(total)), [int(total)]
            return _format_number(total), [total]
        if op == "min":
            candidates = [v[0] for v in values if v]
            if not candidates:
                return "", []
            result = min(candidates)
            return _format_number(result), [result]
        if op == "max":
            candidates = [v[0] for v in values if v]
            if not candidates:
                return "", []
            result = max(candidates)
            return _format_number(result), [result]
        if op == "avg":
            # Each partial shipped (sum, count).
            total = sum(v[0] for v in values if len(v) >= 2)
            count = sum(v[1] for v in values if len(v) >= 2)
            if count == 0:
                return "", []
            result = total / count
            return _format_number(result), [result]
        raise DecompositionError(f"unknown aggregate {op!r}")

    # ------------------------------------------------------------------
    def _reconstruct(
        self, spec: CompositionSpec, partials: list[tuple[SubQuery, str]]
    ) -> tuple[str, list]:
        if spec.original_query is None or spec.source_collection is None:
            raise DecompositionError(
                "reconstruct composition needs the original query and"
                " collection"
            )
        parts: list[XMLDocument] = []
        for subquery, text in partials:
            for root in parse_forest(text):
                parts.extend(_extract_parts(root))
        rebuilt = reconstruct_documents(parts, root_label=spec.root_label)
        scratch = XMLEngine("compose-scratch")
        scratch.create_collection(spec.source_collection)
        for document in rebuilt:
            scratch.store_document(
                spec.source_collection, document, name=document.name
            )
        result = scratch.execute(spec.original_query)
        return result.result_text, result.items


_ANNOTATION_RE = re.compile(
    r'\s+(?:pxid|pxparent)="\d+"|\s+pxorigin="[^"]*"'
)


def strip_annotation_text(text: str) -> str:
    """Remove reconstruction annotations from serialized results.

    The annotation names are reserved by this library (see
    :mod:`repro.algebra.annotations`), so the textual strip is safe for
    any document the publisher produced; it avoids re-parsing what may be
    a large value stream just to drop three attributes.
    """
    return _ANNOTATION_RE.sub("", text)


def _extract_parts(root: XMLNode) -> list[XMLDocument]:
    """Turn one fetched fragment document into join parts.

    * a root with ``pxparent`` is itself one part (vertical projection or
      hybrid FragMode1 unit);
    * a FragMode2 wrapper (chain document) contributes every descendant
      carrying ``pxparent``;
    * anything else (a remainder/skeleton document) is one part as-is.

    Each part's origin comes from its own ``pxorigin`` or the enclosing
    root's.
    """
    origin = read_origin(root)
    if read_annotation(root, PXPARENT) is not None:
        return [_as_part(root, origin)]
    inner = [
        node
        for node in root.descendants()
        if node.kind is NodeKind.ELEMENT
        and read_annotation(node, PXPARENT) is not None
    ]
    if inner:
        # Keep only the outermost annotated nodes (grafts are subtrees).
        outermost = [
            node
            for node in inner
            if not any(parent in inner for parent in node.ancestors())
        ]
        return [_as_part(node, read_origin(node) or origin) for node in outermost]
    return [_as_part(root, origin)]


def _as_part(node: XMLNode, origin: Optional[str]) -> XMLDocument:
    detached = node.clone(deep=True)
    return XMLDocument(detached, name=None, assign_ids=False, origin=origin)


def _format_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(value)
