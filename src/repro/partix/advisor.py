"""Fragmentation design advisor — the paper's stated future work.

§6: "As future work, we intend to use the proposed fragmentation model to
define a methodology for fragmenting XML databases. This methodology
could be used [to] define algorithms for the fragmentation design."

Given a collection, a workload (queries with frequencies) and a target
site count, the advisor recommends a correct fragmentation design:

* **horizontal** (MD collections) — picks the *selector path*: the
  single-valued terminal path most frequently compared against constants
  in the workload (e.g. ``/Item/Section``), measures its value
  distribution on the collection, and proposes one equality fragment per
  heavy value plus a residual fragment (complete and disjoint by
  construction, cf. Figure 2);
* **vertical** (MD collections whose queries cluster on subtrees) — maps
  each query to the top-level *regions* (children of the root) it
  touches, builds a region-affinity matrix (Navathe-style attribute
  affinity, which the paper cites via [14]), clusters regions greedily,
  and proposes one projection fragment per region with allocations that
  co-locate clustered regions;
* **hybrid** (SD collections) — finds the repeating unit under the root
  through the schema's cardinalities (e.g. ``/Store/Items/Item``), picks
  the selector inside the unit, and proposes the Figure-4 design: a
  stub-keeping remainder plus per-value unit fragments.

The recommendation carries a human-readable rationale and is always
validated against the collection with the §3.3 rules before being
returned.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.datamodel.collection import Collection, RepositoryKind
from repro.errors import FragmentationError
from repro.partix.catalog import FragmentAllocation
from repro.partix.correctness import verify_fragmentation
from repro.partix.fragments import (
    FragmentationSchema,
    HorizontalFragment,
    HybridFragment,
    VerticalFragment,
)
from repro.paths.ast import PathExpr
from repro.paths.evaluator import evaluate_path
from repro.paths.parser import parse_path
from repro.paths.predicates import And, Comparison, Contains, Or, Predicate, eq, ne
from repro.xquery.analysis import analyze_query


@dataclass(frozen=True)
class WorkloadQuery:
    """One query of the expected workload, weighted by frequency."""

    text: str
    frequency: float = 1.0


@dataclass
class DesignRecommendation:
    """The advisor's output."""

    kind: str  # "horizontal" | "vertical" | "hybrid"
    fragmentation: FragmentationSchema
    allocations: Optional[list[FragmentAllocation]] = None
    rationale: list[str] = field(default_factory=list)
    score: float = 0.0


class FragmentationAdvisor:
    """Recommends a fragmentation design for a collection + workload."""

    def __init__(
        self,
        collection: Collection,
        workload: Sequence[WorkloadQuery],
        site_count: int,
        sample_size: int = 50,
    ):
        if site_count < 2:
            raise FragmentationError("a fragmentation design needs >= 2 sites")
        if not workload:
            raise FragmentationError("the advisor needs a workload")
        self.collection = collection
        self.workload = list(workload)
        self.site_count = site_count
        self.sample = collection.documents()[:sample_size]
        if not self.sample:
            raise FragmentationError("the advisor needs a non-empty collection")
        self._analyses = [
            (analyze_query(query.text), query.frequency) for query in workload
        ]

    # ------------------------------------------------------------------
    def recommend(self) -> DesignRecommendation:
        """The best design the advisor can justify for this collection."""
        if self.collection.kind is RepositoryKind.SINGLE_DOCUMENT:
            recommendation = self._recommend_hybrid()
        else:
            horizontal = self._recommend_horizontal()
            vertical = self._recommend_vertical()
            candidates = [c for c in (horizontal, vertical) if c is not None]
            if not candidates:
                raise FragmentationError(
                    "no workload predicate or path clustering to design from"
                )
            recommendation = max(candidates, key=lambda c: c.score)
        report = verify_fragmentation(
            recommendation.fragmentation, self.collection
        )
        report.raise_if_invalid()
        recommendation.rationale.append(
            "verified against the collection: complete, disjoint,"
            " reconstructible"
        )
        return recommendation

    # ------------------------------------------------------------------
    # Horizontal
    # ------------------------------------------------------------------
    def _selector_candidates(self) -> dict[str, float]:
        """Frequency-weighted score per equality-compared terminal path."""
        scores: dict[str, float] = {}
        for analysis, frequency in self._analyses:
            for atom in _equality_atoms(analysis.predicate):
                scores[str(atom.path)] = scores.get(str(atom.path), 0.0) + frequency
        return scores

    def _recommend_horizontal(self) -> Optional[DesignRecommendation]:
        scores = self._selector_candidates()
        total_frequency = sum(f for _, f in self._analyses)
        for path_text, score in sorted(
            scores.items(), key=lambda item: -item[1]
        ):
            path = parse_path(path_text)
            values = self._value_distribution(path)
            if values is None or len(values) < 2:
                continue  # multi-valued or constant: unusable selector
            fragments = self._equality_family(
                self.collection.name, path, values
            )
            rationale = [
                f"selector {path_text}: referenced by"
                f" {score:.0f}/{total_frequency:.0f} weighted queries,"
                f" {len(values)} distinct values, single-valued on sample",
                f"{len(fragments)} fragments: top values get their own"
                " fragment, a residual catches the rest",
            ]
            return DesignRecommendation(
                kind="horizontal",
                fragmentation=FragmentationSchema(
                    self.collection.name,
                    fragments,
                    root_label=self.sample[0].root.label,
                ),
                rationale=rationale,
                score=score / max(total_frequency, 1e-9),
            )
        return None

    def _value_distribution(self, path: PathExpr) -> Optional[TallyCounter]:
        """Value histogram of ``path`` over the sample (None if multi-valued)."""
        tally: TallyCounter = TallyCounter()
        for document in self.sample:
            nodes = evaluate_path(path, document)
            if len(nodes) > 1:
                return None
            if nodes:
                tally[nodes[0].text_value()] += 1
        return tally

    def _equality_family(
        self, collection: str, path: PathExpr, values: TallyCounter
    ) -> list[HorizontalFragment]:
        """Top-(k-1) values get their own fragment; a residual completes."""
        own = min(self.site_count - 1, len(values))
        heavy = [value for value, _ in values.most_common(own)]
        fragments = [
            HorizontalFragment(
                f"F_{_slug(value)}", collection, predicate=eq(path, value)
            )
            for value in heavy
        ]
        residual_parts = tuple(ne(path, value) for value in heavy)
        residual = (
            residual_parts[0] if len(residual_parts) == 1 else And(residual_parts)
        )
        fragments.append(
            HorizontalFragment("F_rest", collection, predicate=residual)
        )
        return fragments

    # ------------------------------------------------------------------
    # Vertical
    # ------------------------------------------------------------------
    def _regions(self) -> list[str]:
        """Projectable top-level regions of the sample documents.

        A region is a child label of the root that occurs at most once per
        document — Definition 3's cardinality rule for projection paths.
        Repeating labels stay in the remainder fragment.
        """
        labels: list[str] = []
        repeating: set[str] = set()
        for document in self.sample:
            seen: TallyCounter = TallyCounter(
                child.label for child in document.root.element_children()
            )
            for label, count in seen.items():
                if label is None:
                    continue
                if count > 1:
                    repeating.add(label)
                elif label not in labels:
                    labels.append(label)
        return [label for label in labels if label not in repeating]

    def _recommend_vertical(self) -> Optional[DesignRecommendation]:
        regions = self._regions()
        if len(regions) < 2:
            return None
        root_label = self.sample[0].root.label or ""
        # Which regions does each query touch?
        touch_sets: list[tuple[frozenset[str], float]] = []
        for analysis, frequency in self._analyses:
            if not analysis.paths_exact:
                touch_sets.append((frozenset(regions), frequency))
                continue
            touched = set()
            for path in analysis.touched_paths:
                region = _region_of(path, root_label, regions)
                if region is None:
                    touched.update(regions)  # conservative
                else:
                    touched.add(region)
            touch_sets.append((frozenset(touched or regions), frequency))
        single_region_weight = sum(
            frequency for regions_, frequency in touch_sets if len(regions_) == 1
        )
        total = sum(frequency for _, frequency in touch_sets)
        clusters = _affinity_clusters(regions, touch_sets, self.site_count)
        fragments = [
            VerticalFragment(
                f"F_{region}",
                self.collection.name,
                path=f"/{root_label}/{region}",
            )
            for region in regions
        ]
        # The remainder keeps the root and any content outside the
        # projectable regions (repeating labels, attributes): completeness
        # by construction, and reconstruction gets a real skeleton.
        fragments.append(
            VerticalFragment(
                "F_rest",
                self.collection.name,
                path=f"/{root_label}",
                prune=tuple(f"/{root_label}/{region}" for region in regions),
            )
        )
        allocations = []
        for cluster_index, cluster in enumerate(clusters):
            for region in cluster:
                allocations.append(
                    FragmentAllocation(
                        fragment=f"F_{region}",
                        site=f"site{cluster_index % self.site_count}",
                        stored_collection=f"F_{region}",
                    )
                )
        allocations.append(
            FragmentAllocation(
                fragment="F_rest", site="site0", stored_collection="F_rest"
            )
        )
        rationale = [
            f"regions {', '.join(regions)} under /{root_label}",
            f"{single_region_weight:.0f}/{total:.0f} weighted queries touch"
            " a single region",
            "region clusters (co-located by affinity): "
            + "; ".join(",".join(sorted(c)) for c in clusters),
        ]
        return DesignRecommendation(
            kind="vertical",
            fragmentation=FragmentationSchema(
                self.collection.name, fragments, root_label=root_label
            ),
            allocations=allocations,
            rationale=rationale,
            score=single_region_weight / max(total, 1e-9),
        )

    # ------------------------------------------------------------------
    # Hybrid (SD)
    # ------------------------------------------------------------------
    def _recommend_hybrid(self) -> DesignRecommendation:
        document = self.sample[0]
        root_label = document.root.label or ""
        unit = self._find_repeating_unit(document)
        if unit is None:
            raise FragmentationError(
                "SD collection has no repeating unit to fragment over"
            )
        region_path, unit_label = unit
        # Selector inside the unit: reuse the horizontal machinery against
        # unit-rooted value paths.
        unit_nodes = [
            node
            for node in evaluate_path(f"{region_path}/{unit_label}", document)
        ]
        selector = self._unit_selector(unit_nodes, unit_label)
        if selector is None:
            raise FragmentationError(
                f"no single-valued selector found inside {unit_label!r} units"
            )
        selector_path, values = selector
        own = min(self.site_count - 2, len(values)) if self.site_count > 2 else 1
        heavy = [value for value, _ in values.most_common(max(own, 1))]
        fragments = [
            VerticalFragment(
                "F_rest",
                self.collection.name,
                path=f"/{root_label}",
                prune=(region_path,),
                stub_prunes=True,
            )
        ]
        for value in heavy:
            fragments.append(
                HybridFragment(
                    f"F_{_slug(value)}",
                    self.collection.name,
                    path=region_path,
                    unit_label=unit_label,
                    predicate=eq(selector_path, value),
                )
            )
        residual_parts = tuple(ne(selector_path, value) for value in heavy)
        fragments.append(
            HybridFragment(
                "F_other",
                self.collection.name,
                path=region_path,
                unit_label=unit_label,
                predicate=(
                    residual_parts[0]
                    if len(residual_parts) == 1
                    else And(residual_parts)
                ),
            )
        )
        rationale = [
            f"repeating unit {unit_label!r} under {region_path}",
            f"unit selector {selector_path} with {len(values)} values",
            f"design: remainder (stub prune of {region_path}) +"
            f" {len(fragments) - 1} unit fragments",
        ]
        return DesignRecommendation(
            kind="hybrid",
            fragmentation=FragmentationSchema(
                self.collection.name, fragments, root_label=root_label
            ),
            rationale=rationale,
            score=1.0,
        )

    def _find_repeating_unit(self, document) -> Optional[tuple[str, str]]:
        """The (region path, unit label) with the most repeated children."""
        root_label = document.root.label or ""
        best: Optional[tuple[int, str, str]] = None
        for child in document.root.element_children():
            tally = TallyCounter(
                grand.label for grand in child.element_children()
            )
            for label, count in tally.items():
                if count >= 2 and label is not None:
                    candidate = (count, f"/{root_label}/{child.label}", label)
                    if best is None or candidate[0] > best[0]:
                        best = candidate
        if best is None:
            return None
        return best[1], best[2]

    def _unit_selector(
        self, unit_nodes, unit_label: str
    ) -> Optional[tuple[PathExpr, TallyCounter]]:
        """Most discriminating single-valued leaf among unit children."""
        if not unit_nodes:
            return None
        best: Optional[tuple[float, PathExpr, TallyCounter]] = None
        labels = {
            child.label
            for node in unit_nodes[:20]
            for child in node.element_children()
        }
        for label in labels:
            tally: TallyCounter = TallyCounter()
            single_valued = True
            for node in unit_nodes:
                children = node.child_elements(label)
                if len(children) > 1 or (
                    children and children[0].element_children()
                ):
                    single_valued = False
                    break
                if children:
                    tally[children[0].text_value()] += 1
            if not single_valued or len(tally) < 2:
                continue
            # Prefer low-cardinality, evenly-used selectors (sections over
            # unique codes): score = coverage / distinct values.
            score = sum(tally.values()) / len(tally)
            if len(tally) > len(unit_nodes) * 0.8:
                continue  # nearly unique per unit: a key, not a selector
            path = parse_path(f"/{unit_label}/{label}")
            if best is None or score > best[0]:
                best = (score, path, tally)
        if best is None:
            return None
        return best[1], best[2]


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _equality_atoms(predicate: Optional[Predicate]) -> list[Comparison]:
    if predicate is None:
        return []
    if isinstance(predicate, Comparison) and predicate.op == "=":
        if predicate.path.is_simple:
            return [predicate]
        return []
    if isinstance(predicate, (And, Or)):
        atoms: list[Comparison] = []
        for part in predicate.parts:
            atoms.extend(_equality_atoms(part))
        return atoms
    return []


def _region_of(
    path: PathExpr, root_label: str, regions: list[str]
) -> Optional[str]:
    """Top-level region a touched path falls under (None = unknown)."""
    steps = path.steps
    if not steps:
        return None
    from repro.paths.ast import Axis

    if steps[0].axis is Axis.DESCENDANT:
        return steps[0].name if steps[0].name in regions else None
    if steps[0].name != root_label:
        return steps[0].name if steps[0].name in regions else None
    if len(steps) < 2:
        return None
    return steps[1].name if steps[1].name in regions else None


def _affinity_clusters(
    regions: list[str],
    touch_sets: list[tuple[frozenset[str], float]],
    max_clusters: int,
) -> list[set[str]]:
    """Greedy affinity clustering: merge the region pair with the highest
    co-access weight until the cluster count fits the sites."""
    affinity: dict[frozenset[str], float] = {}
    for touched, frequency in touch_sets:
        touched_list = sorted(touched)
        for i, a in enumerate(touched_list):
            for b in touched_list[i + 1 :]:
                key = frozenset((a, b))
                affinity[key] = affinity.get(key, 0.0) + frequency
    clusters: list[set[str]] = [{region} for region in regions]

    def pair_affinity(c1: set[str], c2: set[str]) -> float:
        return sum(
            affinity.get(frozenset((a, b)), 0.0) for a in c1 for b in c2
        )

    while len(clusters) > max_clusters:
        best_pair = None
        best_value = -1.0
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                value = pair_affinity(clusters[i], clusters[j])
                if value > best_value:
                    best_value = value
                    best_pair = (i, j)
        assert best_pair is not None
        i, j = best_pair
        clusters[i] |= clusters[j]
        del clusters[j]
    # Also merge pairs with strong affinity even below the site count,
    # so co-accessed regions land on one site (fewer joins).
    merged = True
    while merged and len(clusters) > 1:
        merged = False
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                within = pair_affinity(clusters[i], clusters[j])
                if within > 0 and within >= _solo_weight(
                    clusters[i], clusters[j], touch_sets
                ):
                    clusters[i] |= clusters[j]
                    del clusters[j]
                    merged = True
                    break
            if merged:
                break
    return clusters


def _solo_weight(
    c1: set[str], c2: set[str], touch_sets: list[tuple[frozenset[str], float]]
) -> float:
    """Weight of queries confined to exactly one of the two clusters."""
    return sum(
        frequency
        for touched, frequency in touch_sets
        if touched <= c1 or touched <= c2
    )


def _slug(value: str) -> str:
    cleaned = "".join(c if c.isalnum() else "_" for c in value.strip())
    return cleaned[:24] or "value"
