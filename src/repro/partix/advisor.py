"""Fragmentation design advisor — the paper's stated future work.

§6: "As future work, we intend to use the proposed fragmentation model to
define a methodology for fragmenting XML databases. This methodology
could be used [to] define algorithms for the fragmentation design."

Given a collection, a workload (queries with frequencies) and a target
site count, the advisor recommends a correct fragmentation design:

* **horizontal** (MD collections) — picks the *selector path*: the
  single-valued terminal path most frequently compared against constants
  in the workload (e.g. ``/Item/Section``), measures its value
  distribution on the collection, and proposes one equality fragment per
  heavy value plus a residual fragment (complete and disjoint by
  construction, cf. Figure 2);
* **vertical** (MD collections whose queries cluster on subtrees) — maps
  each query to the top-level *regions* (children of the root) it
  touches, builds a region-affinity matrix (Navathe-style attribute
  affinity, which the paper cites via [14]), clusters regions greedily,
  and proposes one projection fragment per region with allocations that
  co-locate clustered regions;
* **hybrid** (SD collections) — finds the repeating unit under the root
  through the schema's cardinalities (e.g. ``/Store/Items/Item``), picks
  the selector inside the unit, and proposes the Figure-4 design: a
  stub-keeping remainder plus per-value unit fragments.

The recommendation carries a human-readable rationale and is always
validated against the collection with the §3.3 rules before being
returned.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.datamodel.collection import Collection, RepositoryKind
from repro.errors import FragmentationError
from repro.partix.catalog import FragmentAllocation
from repro.partix.correctness import verify_fragmentation
from repro.partix.fragments import (
    FragmentationSchema,
    HorizontalFragment,
    HybridFragment,
    VerticalFragment,
)
from repro.paths.ast import PathExpr
from repro.paths.evaluator import evaluate_path
from repro.paths.parser import parse_path
from repro.paths.predicates import And, Comparison, Contains, Or, Predicate, eq, ne
from repro.xquery.analysis import analyze_query


@dataclass(frozen=True)
class WorkloadQuery:
    """One query of the expected workload, weighted by frequency."""

    text: str
    frequency: float = 1.0


@dataclass
class DesignRecommendation:
    """The advisor's output."""

    kind: str  # "horizontal" | "vertical" | "hybrid"
    fragmentation: FragmentationSchema
    allocations: Optional[list[FragmentAllocation]] = None
    rationale: list[str] = field(default_factory=list)
    score: float = 0.0


class FragmentationAdvisor:
    """Recommends a fragmentation design for a collection + workload."""

    def __init__(
        self,
        collection: Collection,
        workload: Sequence[WorkloadQuery],
        site_count: int,
        sample_size: int = 50,
    ):
        if site_count < 2:
            raise FragmentationError("a fragmentation design needs >= 2 sites")
        if not workload:
            raise FragmentationError("the advisor needs a workload")
        self.collection = collection
        self.workload = list(workload)
        self.site_count = site_count
        self.sample = collection.documents()[:sample_size]
        if not self.sample:
            raise FragmentationError("the advisor needs a non-empty collection")
        self._analyses = [
            (analyze_query(query.text), query.frequency) for query in workload
        ]

    # ------------------------------------------------------------------
    def recommend(self) -> DesignRecommendation:
        """The best design the advisor can justify for this collection."""
        if self.collection.kind is RepositoryKind.SINGLE_DOCUMENT:
            recommendation = self._recommend_hybrid()
        else:
            horizontal = self._recommend_horizontal()
            vertical = self._recommend_vertical()
            candidates = [c for c in (horizontal, vertical) if c is not None]
            if not candidates:
                raise FragmentationError(
                    "no workload predicate or path clustering to design from"
                )
            recommendation = max(candidates, key=lambda c: c.score)
        report = verify_fragmentation(
            recommendation.fragmentation, self.collection
        )
        report.raise_if_invalid()
        recommendation.rationale.append(
            "verified against the collection: complete, disjoint,"
            " reconstructible"
        )
        return recommendation

    # ------------------------------------------------------------------
    # Horizontal
    # ------------------------------------------------------------------
    def _selector_candidates(self) -> dict[str, float]:
        """Frequency-weighted score per equality-compared terminal path."""
        scores: dict[str, float] = {}
        for analysis, frequency in self._analyses:
            for atom in _equality_atoms(analysis.predicate):
                scores[str(atom.path)] = scores.get(str(atom.path), 0.0) + frequency
        return scores

    def _recommend_horizontal(self) -> Optional[DesignRecommendation]:
        scores = self._selector_candidates()
        total_frequency = sum(f for _, f in self._analyses)
        for path_text, score in sorted(
            scores.items(), key=lambda item: -item[1]
        ):
            path = parse_path(path_text)
            values = self._value_distribution(path)
            if values is None or len(values) < 2:
                continue  # multi-valued or constant: unusable selector
            fragments = self._equality_family(
                self.collection.name, path, values
            )
            rationale = [
                f"selector {path_text}: referenced by"
                f" {score:.0f}/{total_frequency:.0f} weighted queries,"
                f" {len(values)} distinct values, single-valued on sample",
                f"{len(fragments)} fragments: top values get their own"
                " fragment, a residual catches the rest",
            ]
            return DesignRecommendation(
                kind="horizontal",
                fragmentation=FragmentationSchema(
                    self.collection.name,
                    fragments,
                    root_label=self.sample[0].root.label,
                ),
                rationale=rationale,
                score=score / max(total_frequency, 1e-9),
            )
        return None

    def _value_distribution(self, path: PathExpr) -> Optional[TallyCounter]:
        """Value histogram of ``path`` over the sample (None if multi-valued)."""
        tally: TallyCounter = TallyCounter()
        for document in self.sample:
            nodes = evaluate_path(path, document)
            if len(nodes) > 1:
                return None
            if nodes:
                tally[nodes[0].text_value()] += 1
        return tally

    def _equality_family(
        self, collection: str, path: PathExpr, values: TallyCounter
    ) -> list[HorizontalFragment]:
        """Top-(k-1) values get their own fragment; a residual completes."""
        own = min(self.site_count - 1, len(values))
        heavy = [value for value, _ in values.most_common(own)]
        fragments = [
            HorizontalFragment(
                f"F_{_slug(value)}", collection, predicate=eq(path, value)
            )
            for value in heavy
        ]
        residual_parts = tuple(ne(path, value) for value in heavy)
        residual = (
            residual_parts[0] if len(residual_parts) == 1 else And(residual_parts)
        )
        fragments.append(
            HorizontalFragment("F_rest", collection, predicate=residual)
        )
        return fragments

    # ------------------------------------------------------------------
    # Vertical
    # ------------------------------------------------------------------
    def _regions(self) -> list[str]:
        """Projectable top-level regions of the sample documents.

        A region is a child label of the root that occurs at most once per
        document — Definition 3's cardinality rule for projection paths.
        Repeating labels stay in the remainder fragment.
        """
        labels: list[str] = []
        repeating: set[str] = set()
        for document in self.sample:
            seen: TallyCounter = TallyCounter(
                child.label for child in document.root.element_children()
            )
            for label, count in seen.items():
                if label is None:
                    continue
                if count > 1:
                    repeating.add(label)
                elif label not in labels:
                    labels.append(label)
        return [label for label in labels if label not in repeating]

    def _recommend_vertical(self) -> Optional[DesignRecommendation]:
        regions = self._regions()
        if len(regions) < 2:
            return None
        root_label = self.sample[0].root.label or ""
        # Which regions does each query touch?
        touch_sets: list[tuple[frozenset[str], float]] = []
        for analysis, frequency in self._analyses:
            if not analysis.paths_exact:
                touch_sets.append((frozenset(regions), frequency))
                continue
            touched = set()
            for path in analysis.touched_paths:
                region = _region_of(path, root_label, regions)
                if region is None:
                    touched.update(regions)  # conservative
                else:
                    touched.add(region)
            touch_sets.append((frozenset(touched or regions), frequency))
        single_region_weight = sum(
            frequency for regions_, frequency in touch_sets if len(regions_) == 1
        )
        total = sum(frequency for _, frequency in touch_sets)
        clusters = _affinity_clusters(regions, touch_sets, self.site_count)
        fragments = [
            VerticalFragment(
                f"F_{region}",
                self.collection.name,
                path=f"/{root_label}/{region}",
            )
            for region in regions
        ]
        # The remainder keeps the root and any content outside the
        # projectable regions (repeating labels, attributes): completeness
        # by construction, and reconstruction gets a real skeleton.
        fragments.append(
            VerticalFragment(
                "F_rest",
                self.collection.name,
                path=f"/{root_label}",
                prune=tuple(f"/{root_label}/{region}" for region in regions),
            )
        )
        allocations = []
        for cluster_index, cluster in enumerate(clusters):
            for region in cluster:
                allocations.append(
                    FragmentAllocation(
                        fragment=f"F_{region}",
                        site=f"site{cluster_index % self.site_count}",
                        stored_collection=f"F_{region}",
                    )
                )
        allocations.append(
            FragmentAllocation(
                fragment="F_rest", site="site0", stored_collection="F_rest"
            )
        )
        rationale = [
            f"regions {', '.join(regions)} under /{root_label}",
            f"{single_region_weight:.0f}/{total:.0f} weighted queries touch"
            " a single region",
            "region clusters (co-located by affinity): "
            + "; ".join(",".join(sorted(c)) for c in clusters),
        ]
        return DesignRecommendation(
            kind="vertical",
            fragmentation=FragmentationSchema(
                self.collection.name, fragments, root_label=root_label
            ),
            allocations=allocations,
            rationale=rationale,
            score=single_region_weight / max(total, 1e-9),
        )

    # ------------------------------------------------------------------
    # Hybrid (SD)
    # ------------------------------------------------------------------
    def _recommend_hybrid(self) -> DesignRecommendation:
        document = self.sample[0]
        root_label = document.root.label or ""
        unit = self._find_repeating_unit(document)
        if unit is None:
            raise FragmentationError(
                "SD collection has no repeating unit to fragment over"
            )
        region_path, unit_label = unit
        # Selector inside the unit: reuse the horizontal machinery against
        # unit-rooted value paths.
        unit_nodes = [
            node
            for node in evaluate_path(f"{region_path}/{unit_label}", document)
        ]
        selector = self._unit_selector(unit_nodes, unit_label)
        if selector is None:
            raise FragmentationError(
                f"no single-valued selector found inside {unit_label!r} units"
            )
        selector_path, values = selector
        own = min(self.site_count - 2, len(values)) if self.site_count > 2 else 1
        heavy = [value for value, _ in values.most_common(max(own, 1))]
        fragments = [
            VerticalFragment(
                "F_rest",
                self.collection.name,
                path=f"/{root_label}",
                prune=(region_path,),
                stub_prunes=True,
            )
        ]
        for value in heavy:
            fragments.append(
                HybridFragment(
                    f"F_{_slug(value)}",
                    self.collection.name,
                    path=region_path,
                    unit_label=unit_label,
                    predicate=eq(selector_path, value),
                )
            )
        residual_parts = tuple(ne(selector_path, value) for value in heavy)
        fragments.append(
            HybridFragment(
                "F_other",
                self.collection.name,
                path=region_path,
                unit_label=unit_label,
                predicate=(
                    residual_parts[0]
                    if len(residual_parts) == 1
                    else And(residual_parts)
                ),
            )
        )
        rationale = [
            f"repeating unit {unit_label!r} under {region_path}",
            f"unit selector {selector_path} with {len(values)} values",
            f"design: remainder (stub prune of {region_path}) +"
            f" {len(fragments) - 1} unit fragments",
        ]
        return DesignRecommendation(
            kind="hybrid",
            fragmentation=FragmentationSchema(
                self.collection.name, fragments, root_label=root_label
            ),
            rationale=rationale,
            score=1.0,
        )

    def _find_repeating_unit(self, document) -> Optional[tuple[str, str]]:
        """The (region path, unit label) with the most repeated children."""
        root_label = document.root.label or ""
        best: Optional[tuple[int, str, str]] = None
        for child in document.root.element_children():
            tally = TallyCounter(
                grand.label for grand in child.element_children()
            )
            for label, count in tally.items():
                if count >= 2 and label is not None:
                    candidate = (count, f"/{root_label}/{child.label}", label)
                    if best is None or candidate[0] > best[0]:
                        best = candidate
        if best is None:
            return None
        return best[1], best[2]

    def _unit_selector(
        self, unit_nodes, unit_label: str
    ) -> Optional[tuple[PathExpr, TallyCounter]]:
        """Most discriminating single-valued leaf among unit children."""
        if not unit_nodes:
            return None
        best: Optional[tuple[float, PathExpr, TallyCounter]] = None
        labels = {
            child.label
            for node in unit_nodes[:20]
            for child in node.element_children()
        }
        for label in labels:
            tally: TallyCounter = TallyCounter()
            single_valued = True
            for node in unit_nodes:
                children = node.child_elements(label)
                if len(children) > 1 or (
                    children and children[0].element_children()
                ):
                    single_valued = False
                    break
                if children:
                    tally[children[0].text_value()] += 1
            if not single_valued or len(tally) < 2:
                continue
            # Prefer low-cardinality, evenly-used selectors (sections over
            # unique codes): score = coverage / distinct values.
            score = sum(tally.values()) / len(tally)
            if len(tally) > len(unit_nodes) * 0.8:
                continue  # nearly unique per unit: a key, not a selector
            path = parse_path(f"/{unit_label}/{label}")
            if best is None or score > best[0]:
                best = (score, path, tally)
        if best is None:
            return None
        return best[1], best[2]


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _equality_atoms(predicate: Optional[Predicate]) -> list[Comparison]:
    if predicate is None:
        return []
    if isinstance(predicate, Comparison) and predicate.op == "=":
        if predicate.path.is_simple:
            return [predicate]
        return []
    if isinstance(predicate, (And, Or)):
        atoms: list[Comparison] = []
        for part in predicate.parts:
            atoms.extend(_equality_atoms(part))
        return atoms
    return []


def _region_of(
    path: PathExpr, root_label: str, regions: list[str]
) -> Optional[str]:
    """Top-level region a touched path falls under (None = unknown)."""
    steps = path.steps
    if not steps:
        return None
    from repro.paths.ast import Axis

    if steps[0].axis is Axis.DESCENDANT:
        return steps[0].name if steps[0].name in regions else None
    if steps[0].name != root_label:
        return steps[0].name if steps[0].name in regions else None
    if len(steps) < 2:
        return None
    return steps[1].name if steps[1].name in regions else None


def _affinity_clusters(
    regions: list[str],
    touch_sets: list[tuple[frozenset[str], float]],
    max_clusters: int,
) -> list[set[str]]:
    """Greedy affinity clustering: merge the region pair with the highest
    co-access weight until the cluster count fits the sites."""
    affinity: dict[frozenset[str], float] = {}
    for touched, frequency in touch_sets:
        touched_list = sorted(touched)
        for i, a in enumerate(touched_list):
            for b in touched_list[i + 1 :]:
                key = frozenset((a, b))
                affinity[key] = affinity.get(key, 0.0) + frequency
    clusters: list[set[str]] = [{region} for region in regions]

    def pair_affinity(c1: set[str], c2: set[str]) -> float:
        return sum(
            affinity.get(frozenset((a, b)), 0.0) for a in c1 for b in c2
        )

    while len(clusters) > max_clusters:
        best_pair = None
        best_value = -1.0
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                value = pair_affinity(clusters[i], clusters[j])
                if value > best_value:
                    best_value = value
                    best_pair = (i, j)
        assert best_pair is not None
        i, j = best_pair
        clusters[i] |= clusters[j]
        del clusters[j]
    # Also merge pairs with strong affinity even below the site count,
    # so co-accessed regions land on one site (fewer joins).
    merged = True
    while merged and len(clusters) > 1:
        merged = False
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                within = pair_affinity(clusters[i], clusters[j])
                if within > 0 and within >= _solo_weight(
                    clusters[i], clusters[j], touch_sets
                ):
                    clusters[i] |= clusters[j]
                    del clusters[j]
                    merged = True
                    break
            if merged:
                break
    return clusters


def _solo_weight(
    c1: set[str], c2: set[str], touch_sets: list[tuple[frozenset[str], float]]
) -> float:
    """Weight of queries confined to exactly one of the two clusters."""
    return sum(
        frequency
        for touched, frequency in touch_sets
        if touched <= c1 or touched <= c2
    )


def _slug(value: str) -> str:
    cleaned = "".join(c if c.isalnum() else "_" for c in value.strip())
    return cleaned[:24] or "value"


# ----------------------------------------------------------------------
# Workload-driven rebalancing (the online half of the advisor)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RebalanceAction:
    """One ranked re-placement the workload advisor proposes.

    ``score`` is estimated seconds shaved off the *bottleneck site's*
    per-workload busy time (current − projected); actions are ranked by
    it. The action is plain data — :class:`repro.rebalance.Rebalancer`
    applies it.
    """

    kind: str  # "split" | "move" | "replicate" | "merge"
    collection: str
    fragment: str
    target_sites: tuple[str, ...] = ()
    score: float = 0.0
    current_bottleneck_seconds: float = 0.0
    projected_bottleneck_seconds: float = 0.0
    rationale: str = ""
    #: Second fragment of a merge (unused otherwise).
    fragment_b: Optional[str] = None
    #: Explicit split boundary path (None = let the rebalancer probe).
    split_path: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "collection": self.collection,
            "fragment": self.fragment,
            "target_sites": list(self.target_sites),
            "score": self.score,
            "current_bottleneck_seconds": self.current_bottleneck_seconds,
            "projected_bottleneck_seconds": self.projected_bottleneck_seconds,
            "rationale": self.rationale,
            "fragment_b": self.fragment_b,
            "split_path": self.split_path,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RebalanceAction":
        return cls(
            kind=payload["kind"],
            collection=payload["collection"],
            fragment=payload["fragment"],
            target_sites=tuple(payload.get("target_sites") or ()),
            score=float(payload.get("score", 0.0)),
            current_bottleneck_seconds=float(
                payload.get("current_bottleneck_seconds", 0.0)
            ),
            projected_bottleneck_seconds=float(
                payload.get("projected_bottleneck_seconds", 0.0)
            ),
            rationale=payload.get("rationale", ""),
            fragment_b=payload.get("fragment_b"),
            split_path=payload.get("split_path"),
        )


class _StatsOverlay:
    """A catalog stand-in whose ``statistics`` answers hypothetically.

    The cost model duck-types its catalog, so scoring a *candidate*
    design only needs fragment statistics for replicas that do not exist
    yet — this overlay serves those from ``overrides`` and delegates
    everything else to the real catalog.
    """

    def __init__(self, catalog, overrides: dict):
        self._catalog = catalog
        self._overrides = overrides

    def statistics(self, collection: str, fragment: str, site: str):
        key = (collection, fragment, site)
        if key in self._overrides:
            return self._overrides[key]
        return self._catalog.statistics(collection, fragment, site)


class WorkloadAdvisor:
    """Mines a :class:`repro.rebalance.QueryLog` for rebalance actions.

    Where :class:`FragmentationAdvisor` designs a fragmentation from
    scratch (collection + anticipated workload), the workload advisor
    starts from the *observed* workload of a live deployment: which
    fragments each query actually scanned, on which site, and how
    selective it turned out to be. It rebuilds each site's busy time per
    pass over the logged workload with the plan's own
    :class:`~repro.plan.cost.CostModel`, then scores candidate actions —
    split the hottest horizontal fragment, move or replicate it, merge
    the two coldest siblings — by how far they lower the bottleneck
    site's busy time. Hypothetical replicas (split halves, moved copies)
    are costed through a statistics overlay so the same model prices
    designs that do not exist yet.
    """

    def __init__(self, catalog, cost_model, query_log, sites: Sequence[str]):
        self.catalog = catalog
        self.cost_model = cost_model
        self.query_log = query_log
        self.sites = list(sites)

    # ------------------------------------------------------------------
    def advise(
        self, collection: Optional[str] = None, top: int = 5
    ) -> list[RebalanceAction]:
        """Ranked rebalance actions (best first; may be empty)."""
        if collection is not None:
            collections = [collection]
        else:
            collections = sorted(
                {
                    entry.collection
                    for entry in self.query_log.entries()
                    if entry.collection is not None
                    and self.catalog.is_fragmented(entry.collection)
                }
            )
        actions: list[RebalanceAction] = []
        for name in collections:
            actions.extend(self._advise_collection(name))
        actions.sort(key=lambda action: -action.score)
        return actions[:top]

    # ------------------------------------------------------------------
    def _advise_collection(self, collection: str) -> list[RebalanceAction]:
        design = self.catalog.fragmentation(collection)
        fragment_names = set(design.fragment_names())
        # Re-price every logged lane with the cost model: estimated busy
        # seconds per (fragment, site) over one pass of the logged
        # workload. Lanes from earlier catalog versions whose fragments
        # no longer exist are skipped — their design is gone.
        lane_cost: dict[tuple[str, str], float] = {}
        entries = self.query_log.entries(collection)
        for entry in entries:
            for lane in entry.lanes:
                if lane.fragment not in fragment_names:
                    continue
                estimate = self.cost_model.scan_estimate(
                    collection,
                    lane.fragment,
                    lane.site,
                    entry.query,
                    selectivity=(
                        lane.selectivity
                        if lane.selectivity is not None
                        else 1.0
                    ),
                )
                key = (lane.fragment, lane.site)
                lane_cost[key] = lane_cost.get(key, 0.0) + estimate.total_seconds
        if not lane_cost:
            return []
        site_load: dict[str, float] = {site: 0.0 for site in self.sites}
        for (fragment, site), seconds in lane_cost.items():
            site_load[site] = site_load.get(site, 0.0) + seconds
        bottleneck_site = max(site_load, key=lambda s: (site_load[s], s))
        current = site_load[bottleneck_site]
        if current <= 0.0:
            return []
        hot_candidates = [
            (fragment, seconds)
            for (fragment, site), seconds in lane_cost.items()
            if site == bottleneck_site
        ]
        hot_fragment, hot_seconds = max(
            hot_candidates, key=lambda item: (item[1], item[0])
        )
        cold_sites = sorted(
            (site for site in site_load if site != bottleneck_site),
            key=lambda s: (site_load[s], s),
        )
        if not cold_sites:
            return []
        actions: list[RebalanceAction] = []

        def projected(moves: dict[str, float]) -> float:
            """Bottleneck after adding per-site deltas to the load map."""
            adjusted = dict(site_load)
            for site, delta in moves.items():
                adjusted[site] = adjusted.get(site, 0.0) + delta
            return max(adjusted.values())

        # -- split: halve the hot fragment across bottleneck + coldest --
        fragment_def = design.fragment(hot_fragment)
        stats = self.catalog.statistics(
            collection, hot_fragment, bottleneck_site
        )
        if (
            isinstance(fragment_def, HorizontalFragment)
            and stats is not None
            and stats.documents >= 2
        ):
            half_seconds = self._half_cost(
                collection, hot_fragment, bottleneck_site, stats, entries
            )
            target = cold_sites[0]
            after = projected(
                {
                    bottleneck_site: half_seconds - hot_seconds,
                    target: half_seconds,
                }
            )
            actions.append(
                RebalanceAction(
                    kind="split",
                    collection=collection,
                    fragment=hot_fragment,
                    target_sites=(bottleneck_site, target),
                    score=current - after,
                    current_bottleneck_seconds=current,
                    projected_bottleneck_seconds=after,
                    rationale=(
                        f"{bottleneck_site!r} is the bottleneck"
                        f" ({current:.3f}s busy per workload pass) and"
                        f" {hot_fragment!r} accounts for"
                        f" {hot_seconds:.3f}s of it; splitting the"
                        f" fragment keeps one half there and places the"
                        f" other on {target!r}"
                        f" (least-loaded, {site_load[target]:.3f}s)"
                    ),
                )
            )
        # -- move: ship the hot fragment to the coldest site -----------
        target = cold_sites[0]
        after = projected({bottleneck_site: -hot_seconds, target: hot_seconds})
        actions.append(
            RebalanceAction(
                kind="move",
                collection=collection,
                fragment=hot_fragment,
                target_sites=(target,),
                score=current - after,
                current_bottleneck_seconds=current,
                projected_bottleneck_seconds=after,
                rationale=(
                    f"re-placing {hot_fragment!r} ({hot_seconds:.3f}s of"
                    f" {bottleneck_site!r}'s {current:.3f}s) onto"
                    f" {target!r} ({site_load[target]:.3f}s)"
                ),
            )
        )
        # -- replicate: failover headroom for the hot fragment ---------
        # Scored at zero latency benefit on purpose: the lane scheduler
        # balances load *within* one query's plan, so a single-scan
        # query keeps choosing the same cheapest replica — a copy buys
        # failover capacity, not lower steady-state latency.
        replica_sites = {
            allocation.site
            for allocation in self.catalog.replicas(collection, hot_fragment)
        }
        replica_targets = [s for s in cold_sites if s not in replica_sites]
        if replica_targets:
            target = replica_targets[0]
            actions.append(
                RebalanceAction(
                    kind="replicate",
                    collection=collection,
                    fragment=hot_fragment,
                    target_sites=(target,),
                    score=0.0,
                    current_bottleneck_seconds=current,
                    projected_bottleneck_seconds=current,
                    rationale=(
                        f"a replica of {hot_fragment!r} on {target!r}"
                        " adds failover headroom for the hottest"
                        " fragment (lowering picks one replica per"
                        " query, so steady-state latency is unchanged)"
                    ),
                )
            )
        # -- merge: fuse the two coldest horizontal siblings -----------
        horizontal = [
            item
            for item in design.fragments
            if isinstance(item, HorizontalFragment)
        ]
        if len(horizontal) >= 3:
            by_heat = sorted(
                horizontal,
                key=lambda item: (
                    sum(
                        seconds
                        for (fragment, _), seconds in lane_cost.items()
                        if fragment == item.name
                    ),
                    item.name,
                ),
            )
            cold_a, cold_b = by_heat[0], by_heat[1]
            if cold_a.name != hot_fragment and cold_b.name != hot_fragment:
                cold_cost = sum(
                    seconds
                    for (fragment, _), seconds in lane_cost.items()
                    if fragment in (cold_a.name, cold_b.name)
                )
                target = self.catalog.allocation(collection, cold_a.name).site
                actions.append(
                    RebalanceAction(
                        kind="merge",
                        collection=collection,
                        fragment=cold_a.name,
                        fragment_b=cold_b.name,
                        target_sites=(target,),
                        score=0.0,
                        current_bottleneck_seconds=current,
                        projected_bottleneck_seconds=current,
                        rationale=(
                            f"{cold_a.name!r} + {cold_b.name!r} together"
                            f" cost only {cold_cost:.3f}s per pass;"
                            " merging them frees a dispatch lane without"
                            " moving the bottleneck"
                        ),
                    )
                )
        return actions

    # ------------------------------------------------------------------
    def _half_cost(
        self, collection, fragment, site, stats, entries
    ) -> float:
        """Cost of one split half's share of the logged workload, priced
        by the same model through a halved-statistics overlay."""
        from repro.partix.catalog import FragmentStatistics
        from repro.plan.cost import CostModel

        half_name = f"{fragment}@half"
        overlay = _StatsOverlay(
            self.catalog,
            {
                (collection, half_name, site): FragmentStatistics(
                    documents=max(1, stats.documents // 2),
                    bytes=max(1, stats.bytes // 2),
                )
            },
        )
        model = CostModel(
            overlay,
            self.cost_model.network,
            seconds_per_document=self.cost_model.seconds_per_document,
            seconds_per_byte=self.cost_model.seconds_per_byte,
        )
        total = 0.0
        for entry in entries:
            for lane in entry.lanes:
                if lane.fragment != fragment:
                    continue
                total += model.scan_estimate(
                    collection,
                    half_name,
                    site,
                    entry.query,
                    selectivity=(
                        lane.selectivity
                        if lane.selectivity is not None
                        else 1.0
                    ),
                ).total_seconds
        return total
