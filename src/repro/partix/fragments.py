"""Fragment definitions (paper Definitions 1-4).

A fragment ``F := ⟨C, γ⟩`` names a source collection and an operation:

* :class:`HorizontalFragment` — ``γ = σμ`` (Definition 2): documents of C
  satisfying a conjunction of simple predicates. Same schema as C.
* :class:`VerticalFragment` — ``γ = π_{P,Γ}`` (Definition 3): per source
  document, the subtree rooted at the node selected by ``P``, minus the
  subtrees selected by the prune criterion ``Γ``.
* :class:`HybridFragment` — ``γ = π • σ`` (Definition 4): the subtrees
  projected by π whose *units* (the repeating elements under the projected
  region, e.g. ``Item``) satisfy σ. This is how SD repositories get
  horizontally distributed (§3.2: "the elements in an SD repository may be
  distributed over fragments using a hybrid fragmentation").

A :class:`FragmentationSchema` groups the fragments Φ = {F1..Fn} of one
collection, records the collection's root label (needed to reconstruct
designs where no fragment keeps the root, like the paper's XBench one),
and provides static validity checks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.algebra.operators import (
    Composition,
    DocumentOperator,
    Projection,
    Selection,
)
from repro.errors import FragmentationError
from repro.paths.ast import PathExpr
from repro.paths.parser import parse_path
from repro.paths.predicates import Predicate
from repro.xschema.schema import Schema


def _as_path(path: Union[PathExpr, str]) -> PathExpr:
    return parse_path(path) if isinstance(path, str) else path


@dataclass(frozen=True)
class FragmentDefinition(abc.ABC):
    """Common shape of a fragment definition ⟨C, γ⟩."""

    name: str
    collection: str

    @property
    @abc.abstractmethod
    def kind(self) -> str:
        """``"horizontal"``, ``"vertical"`` or ``"hybrid"``."""

    @abc.abstractmethod
    def operator(self) -> DocumentOperator:
        """The γ operation as an executable algebra operator."""

    @abc.abstractmethod
    def describe(self) -> str:
        """The fragment in the paper's ⟨C, γ⟩ notation."""


@dataclass(frozen=True)
class HorizontalFragment(FragmentDefinition):
    """``F := ⟨C, σμ⟩`` — documents satisfying μ (Definition 2)."""

    predicate: Predicate = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.predicate is None:
            raise FragmentationError(
                f"horizontal fragment {self.name!r} needs a predicate"
            )

    @property
    def kind(self) -> str:
        return "horizontal"

    def operator(self) -> DocumentOperator:
        return Selection(self.predicate)

    def describe(self) -> str:
        return f"{self.name} := ⟨{self.collection}, σ[{self.predicate}]⟩"


@dataclass(frozen=True)
class VerticalFragment(FragmentDefinition):
    """``F := ⟨C, π_{P,Γ}⟩`` — projected subtrees (Definition 3)."""

    path: PathExpr = None  # type: ignore[assignment]
    prune: tuple[PathExpr, ...] = field(default=())
    stub_prunes: bool = False

    def __post_init__(self) -> None:
        if self.path is None:
            raise FragmentationError(
                f"vertical fragment {self.name!r} needs a projection path"
            )
        object.__setattr__(self, "path", _as_path(self.path))
        object.__setattr__(
            self, "prune", tuple(_as_path(p) for p in self.prune)
        )

    @property
    def kind(self) -> str:
        return "vertical"

    def operator(self) -> DocumentOperator:
        return Projection(self.path, prune=self.prune, stub_prunes=self.stub_prunes)

    def validate_against_schema(self, schema: Schema, root_type: str) -> None:
        """Static Definition 3 validity: P selects at most one node.

        Only decidable for simple paths; a positional step pins one
        occurrence and is accepted. Raises on violation.
        """
        if any(step.position is not None for step in self.path.steps):
            return
        if not self.path.is_simple:
            return  # undecidable statically; the operator checks at runtime
        labels = [s.name for s in self.path.steps]
        if labels[0] != schema.get(root_type).name:
            raise FragmentationError(
                f"fragment {self.name!r}: path {self.path} does not start at"
                f" root type {root_type!r}"
            )
        cardinality = schema.max_path_cardinality(labels[1:], root_type)
        if cardinality is None or cardinality > 1:
            raise FragmentationError(
                f"fragment {self.name!r}: path {self.path} may select"
                f" {'unbounded' if cardinality is None else cardinality}"
                " nodes per document; vertical fragments require at most one"
                " (Definition 3) unless a positional step is used"
            )

    def describe(self) -> str:
        gamma = "{" + ", ".join(str(p) for p in self.prune) + "}"
        return f"{self.name} := ⟨{self.collection}, π[{self.path}, {gamma}]⟩"


@dataclass(frozen=True)
class HybridFragment(FragmentDefinition):
    """``F := ⟨C, π_{P,Γ} • σμ⟩`` — projection then selection (Definition 4).

    ``path`` projects the region (e.g. ``/Store/Items``); ``unit_label``
    names the repeating element under the region (e.g. ``Item``) whose
    subtrees the predicate filters, each unit evaluated as its own mini
    document (the predicate's paths start at the unit, e.g.
    ``/Item/Section``). ``predicate=None`` keeps every unit.
    """

    path: PathExpr = None  # type: ignore[assignment]
    unit_label: str = ""
    predicate: Optional[Predicate] = None
    prune: tuple[PathExpr, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.path is None or not self.unit_label:
            raise FragmentationError(
                f"hybrid fragment {self.name!r} needs a region path and a"
                " unit label"
            )
        object.__setattr__(self, "path", _as_path(self.path))
        object.__setattr__(
            self, "prune", tuple(_as_path(p) for p in self.prune)
        )

    @property
    def kind(self) -> str:
        return "hybrid"

    def unit_path(self) -> PathExpr:
        """Absolute path of the units inside source documents."""
        return parse_path(f"{self.path}/{self.unit_label}")

    def operator(self) -> DocumentOperator:
        """π to the units, then σ — yields one document per selected unit.

        This is the algebraic (materialization-independent) semantics;
        FragMode1/FragMode2 packaging lives in the publisher.
        """
        project = Projection(
            self.unit_path(), prune=self.prune, allow_multiple=True
        )
        if self.predicate is None:
            return project
        return Composition(project, Selection(self.predicate))

    def describe(self) -> str:
        gamma = "{" + ", ".join(str(p) for p in self.prune) + "}"
        sigma = f" • σ[{self.predicate}]" if self.predicate is not None else ""
        return (
            f"{self.name} := ⟨{self.collection},"
            f" π[{self.path}/{self.unit_label}, {gamma}]{sigma}⟩"
        )


class FragmentationSchema:
    """The fragments Φ of one collection plus design metadata.

    Parameters
    ----------
    collection:
        Source collection name.
    fragments:
        The fragment definitions. All must reference ``collection``.
    root_label:
        Label of source document roots; required to reconstruct vertical
        designs where no fragment retains the root.
    schema / root_type:
        Optional XML schema context enabling static validity checks and
        single-valuedness analysis for predicate-based pruning.
    """

    def __init__(
        self,
        collection: str,
        fragments: Sequence[FragmentDefinition],
        root_label: Optional[str] = None,
        schema: Optional[Schema] = None,
        root_type: Optional[str] = None,
    ):
        if not fragments:
            raise FragmentationError("a fragmentation schema needs fragments")
        names = [f.name for f in fragments]
        if len(set(names)) != len(names):
            raise FragmentationError("duplicate fragment names")
        for fragment in fragments:
            if fragment.collection != collection:
                raise FragmentationError(
                    f"fragment {fragment.name!r} references collection"
                    f" {fragment.collection!r}, not {collection!r}"
                )
        self.collection = collection
        self.fragments: tuple[FragmentDefinition, ...] = tuple(fragments)
        self.root_label = root_label
        self.schema = schema
        self.root_type = root_type
        if schema is not None and root_type is not None:
            for fragment in self.fragments:
                if isinstance(fragment, VerticalFragment):
                    fragment.validate_against_schema(schema, root_type)

    # ------------------------------------------------------------------
    def fragment(self, name: str) -> FragmentDefinition:
        for fragment in self.fragments:
            if fragment.name == name:
                return fragment
        raise FragmentationError(
            f"no fragment {name!r} in schema for {self.collection!r}"
        )

    def fragment_names(self) -> list[str]:
        return [f.name for f in self.fragments]

    @property
    def kinds(self) -> set[str]:
        return {f.kind for f in self.fragments}

    @property
    def is_horizontal(self) -> bool:
        return self.kinds == {"horizontal"}

    @property
    def is_vertical(self) -> bool:
        return self.kinds == {"vertical"}

    def horizontal_fragments(self) -> list[HorizontalFragment]:
        return [f for f in self.fragments if isinstance(f, HorizontalFragment)]

    def vertical_fragments(self) -> list[VerticalFragment]:
        return [f for f in self.fragments if isinstance(f, VerticalFragment)]

    def hybrid_fragments(self) -> list[HybridFragment]:
        return [f for f in self.fragments if isinstance(f, HybridFragment)]

    def describe(self) -> str:
        lines = [f"Fragmentation of {self.collection!r}:"]
        lines.extend("  " + f.describe() for f in self.fragments)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.fragments)

    def __iter__(self):
        return iter(self.fragments)
