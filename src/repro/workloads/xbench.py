"""XBench stand-in: article documents for the vertical experiment.

The paper's XBenchVer database holds documents "varying from 5Mb to 15Mb
each", vertically fragmented into prolog / body / epilog (§5):

    F1papers := ⟨Cpapers, π/article/prolog⟩
    F2papers := ⟨Cpapers, π/article/body⟩
    F3papers := ⟨Cpapers, π/article/epilog⟩

XBench's DC/MD document class is an article with a bibliographic prolog,
a large body (the bulk of the bytes), and an epilog of references. We
generate that shape with a configurable target size; sizes are scaled
down together with the rest of the evaluation grid.
"""

from __future__ import annotations

from repro.datamodel.collection import Collection, RepositoryKind
from repro.partix.fragments import FragmentationSchema, VerticalFragment
from repro.workloads.toxgene import (
    Choice,
    Counter,
    DateRange,
    IntRange,
    NodeTemplate,
    ToXgene,
    Words,
    child,
)
from repro.xschema.schema import ChildDecl, Schema
from repro.xschema.types import SimpleType

PAPERS_COLLECTION = "Cpapers"

COUNTRIES = ("BR", "US", "DE", "FR", "JP", "CA", "IT", "UK")
GENRES = ("research", "survey", "demo", "industrial", "vision")

#: Approximate serialized bytes of one generated body section (used to
#: size documents; measured empirically, asserted loosely in tests).
_SECTION_BYTES = 1500


def xbench_schema() -> Schema:
    """Structural schema of the article documents."""
    schema = Schema("Sxbench")
    schema.element("title", content=SimpleType.STRING)
    schema.element("name", content=SimpleType.STRING)
    schema.element("affiliation", content=SimpleType.STRING)
    schema.element("author", children=[ChildDecl("name"), ChildDecl("affiliation")])
    schema.element(
        "authors", children=[ChildDecl("author", min_occurs=1, max_occurs=4)]
    )
    schema.element("date", content=SimpleType.DATE)
    schema.element("dateline", children=[ChildDecl("date")])
    schema.element("genre", content=SimpleType.STRING)
    schema.element("keyword", content=SimpleType.STRING)
    schema.element(
        "keywords", children=[ChildDecl("keyword", min_occurs=1, max_occurs=None)]
    )
    schema.element(
        "prolog",
        children=[
            ChildDecl("title"),
            ChildDecl("authors"),
            ChildDecl("dateline"),
            ChildDecl("genre"),
            ChildDecl("keywords"),
        ],
    )
    schema.element("abstract", content=SimpleType.STRING)
    schema.element("p", content=SimpleType.STRING)
    schema.element(
        "section",
        children=[ChildDecl("title"), ChildDecl("p", min_occurs=1, max_occurs=None)],
    )
    schema.element(
        "body",
        children=[
            ChildDecl("abstract"),
            ChildDecl("section", min_occurs=1, max_occurs=None),
        ],
    )
    schema.element("a_id", content=SimpleType.STRING)
    schema.element(
        "references", children=[ChildDecl("a_id", min_occurs=1, max_occurs=None)]
    )
    schema.element("country", content=SimpleType.STRING)
    schema.element("classification", content=SimpleType.STRING)
    schema.element(
        "epilog",
        children=[
            ChildDecl("references"),
            ChildDecl("country"),
            ChildDecl("classification"),
        ],
    )
    schema.element(
        "article",
        children=[ChildDecl("prolog"), ChildDecl("body"), ChildDecl("epilog")],
    )
    return schema


def article_template(target_bytes: int = 60_000) -> NodeTemplate:
    """Template of one article sized roughly to ``target_bytes``.

    The body carries nearly all the bytes (as in XBench); prolog and
    epilog stay small so single-fragment queries over them are cheap —
    the effect the vertical experiment measures.
    """
    section_count = max(2, target_bytes // _SECTION_BYTES)
    section = NodeTemplate(
        "section",
        children=[
            child(NodeTemplate("title", value=Words(3, 6))),
            child(
                NodeTemplate(
                    "p", value=Words(60, 90, inject=("remarkable", 0.15))
                ),
                2,
                3,
            ),
        ],
    )
    return NodeTemplate(
        "article",
        children=[
            child(
                NodeTemplate(
                    "prolog",
                    children=[
                        child(NodeTemplate("title", value=Words(4, 9, inject=("frontier", 0.2)))),
                        child(
                            NodeTemplate(
                                "authors",
                                children=[
                                    child(
                                        NodeTemplate(
                                            "author",
                                            children=[
                                                child(NodeTemplate("name", value=Words(2, 2))),
                                                child(NodeTemplate("affiliation", value=Words(2, 4))),
                                            ],
                                        ),
                                        1,
                                        4,
                                    )
                                ],
                            )
                        ),
                        child(
                            NodeTemplate(
                                "dateline",
                                children=[child(NodeTemplate("date", value=DateRange(1998, 2005)))],
                            )
                        ),
                        child(NodeTemplate("genre", value=Choice(GENRES))),
                        child(
                            NodeTemplate(
                                "keywords",
                                children=[child(NodeTemplate("keyword", value=Words(1, 2)), 3, 8)],
                            )
                        ),
                    ],
                )
            ),
            child(
                NodeTemplate(
                    "body",
                    children=[
                        child(NodeTemplate("abstract", value=Words(50, 90, inject=("novel", 0.3)))),
                        child(section, section_count),
                    ],
                )
            ),
            child(
                NodeTemplate(
                    "epilog",
                    children=[
                        child(
                            NodeTemplate(
                                "references",
                                children=[child(NodeTemplate("a_id", value=Counter("ref-{:05d}")), 5, 25)],
                            )
                        ),
                        child(NodeTemplate("country", value=Choice(COUNTRIES))),
                        child(NodeTemplate("classification", value=IntRange(1, 5))),
                    ],
                )
            ),
        ],
    )


def build_xbench_collection(
    count: int,
    doc_bytes: int = 60_000,
    seed: int = 7,
    name: str = PAPERS_COLLECTION,
) -> Collection:
    """Build the Cpapers collection of ``count`` articles of ~``doc_bytes``."""
    generator = ToXgene(seed=seed)
    template = article_template(target_bytes=doc_bytes)
    documents = generator.generate_documents(
        template, count, name_fmt="article-{:05d}.xml"
    )
    return Collection(
        name,
        documents,
        schema=xbench_schema(),
        root_type="article",
        kind=RepositoryKind.MULTIPLE_DOCUMENTS,
    )


def xbench_vertical_fragmentation(
    collection: str = PAPERS_COLLECTION,
) -> FragmentationSchema:
    """The paper's three-way vertical design over articles."""
    return FragmentationSchema(
        collection,
        [
            VerticalFragment("F1papers", collection, path="/article/prolog"),
            VerticalFragment("F2papers", collection, path="/article/body"),
            VerticalFragment("F3papers", collection, path="/article/epilog"),
        ],
        root_label="article",
    )
