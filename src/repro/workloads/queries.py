"""The three query sets of the paper's evaluation (§5).

The concrete query texts lived in the unavailable technical report
(ES-691); the paper describes their *classes*: "diverse access patterns to
XML collections, including the usage of predicates, text searches and
aggregation operations" (horizontal), single- vs multi-fragment access
(vertical, where "queries Q4, Q7, Q8 and Q9 need more than one fragment"),
and the hybrid set reusing the items queries with most of them returning
"all the content of the Item element", plus two queries that prune Items
(Q9, Q10) and one aggregation (Q11).

Each reconstructed query is tagged with the traits it exercises so tests
and benchmark reports can assert per-class behaviour (e.g. "text-search
queries benefit most from horizontal fragmentation").
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BenchQuery:
    """One benchmark query with its behavioural traits."""

    qid: str
    text: str
    description: str
    traits: frozenset[str] = field(default_factory=frozenset)

    def has(self, trait: str) -> bool:
        return trait in self.traits


def _query(qid: str, text: str, description: str, *traits: str) -> BenchQuery:
    return BenchQuery(qid, text, description, frozenset(traits))


# ----------------------------------------------------------------------
# Citems — horizontal experiments (ItemsSHor / ItemsLHor, Fig. 7a/7b)
# ----------------------------------------------------------------------
def items_queries(collection: str = "Citems") -> list[BenchQuery]:
    c = collection
    return [
        _query(
            "Q1",
            f'for $i in collection("{c}")/Item'
            ' where $i/Code = "I-000050" return $i/Name/text()',
            "exact-match selection on Code (point lookup)",
            "predicate",
            "point",
        ),
        _query(
            "Q2",
            f'for $i in collection("{c}")/Item'
            ' where $i/Section = "CD" return $i/Name/text()',
            "selection matching the fragmentation attribute",
            "predicate",
            "matches-fragmentation",
        ),
        _query(
            "Q3",
            f'for $i in collection("{c}")/Item'
            ' where $i/Release >= "2004-01-01" return $i/Code/text()',
            "date-range predicate",
            "predicate",
            "range",
        ),
        _query(
            "Q4",
            f'for $i in collection("{c}")/Item'
            " where $i/PictureList return $i/Code/text()",
            "existential test on an optional structure",
            "existential",
        ),
        _query(
            "Q5",
            f'for $i in collection("{c}")/Item'
            ' where contains($i/Description, "good") return $i/Name/text()',
            "text search over Description",
            "text-search",
        ),
        _query(
            "Q6",
            f'for $i in collection("{c}")/Item'
            ' where contains($i/Description, "good") and $i/Section = "DVD"'
            " return $i",
            "text search + fragmentation predicate, full items returned",
            "text-search",
            "predicate",
            "matches-fragmentation",
            "big-result",
        ),
        _query(
            "Q7",
            f'count(for $i in collection("{c}")/Item'
            ' where $i/Release >= "2003-01-01" return $i)',
            "aggregation (count) under a range predicate",
            "aggregation",
        ),
        _query(
            "Q8",
            f'count(for $i in collection("{c}")/Item'
            ' where contains($i/Description, "good") return $i)',
            "text search + aggregation (the paper's best-speedup class)",
            "text-search",
            "aggregation",
        ),
    ]


# ----------------------------------------------------------------------
# Cpapers — vertical experiments (XBenchVer, Fig. 7c)
# ----------------------------------------------------------------------
def xbench_queries(collection: str = "Cpapers") -> list[BenchQuery]:
    c = collection
    return [
        _query(
            "Q1",
            f'for $a in collection("{c}")/article'
            ' where contains($a/prolog/title, "frontier")'
            " return $a/prolog/title/text()",
            "title text search (prolog only)",
            "single-fragment",
            "text-search",
        ),
        _query(
            "Q2",
            f'count(for $a in collection("{c}")/article'
            ' where $a/prolog/genre = "survey" return $a)',
            "count by genre (prolog only)",
            "single-fragment",
            "aggregation",
        ),
        _query(
            "Q3",
            f'for $a in collection("{c}")/article'
            ' where $a/prolog/dateline/date >= "2004-01-01"'
            " return $a/prolog/authors/author/name/text()",
            "author names in a date range (prolog only)",
            "single-fragment",
            "predicate",
        ),
        _query(
            "Q4",
            f'for $a in collection("{c}")/article'
            ' where contains($a/body/abstract, "novel")'
            " return $a/prolog/title/text()",
            "abstract search returning titles (prolog + body)",
            "multi-fragment",
            "text-search",
        ),
        _query(
            "Q5",
            f'count(for $s in collection("{c}")/article/body/section'
            ' where contains($s/p, "remarkable") return $s)',
            "count sections containing a term (body only)",
            "single-fragment",
            "text-search",
            "aggregation",
        ),
        _query(
            "Q6",
            f'count(for $a in collection("{c}")/article'
            ' where $a/epilog/country = "BR" return $a)',
            "count by country (epilog only)",
            "single-fragment",
            "aggregation",
        ),
        _query(
            "Q7",
            f'for $a in collection("{c}")/article'
            ' where $a/prolog/genre = "survey"'
            " return count($a/epilog/references/a_id)",
            "reference counts of surveys (prolog + epilog)",
            "multi-fragment",
            "aggregation",
        ),
        _query(
            "Q8",
            f'for $a in collection("{c}")/article'
            ' where contains($a/body/abstract, "novel")'
            " return $a/epilog/country/text()",
            "abstract search returning countries (body + epilog)",
            "multi-fragment",
            "text-search",
        ),
        _query(
            "Q9",
            f'for $a in collection("{c}")/article'
            ' where contains($a/body/abstract, "novel")'
            ' and $a/epilog/country = "BR"'
            " return $a/prolog/title/text()",
            "search + country filter returning titles (all 3 fragments)",
            "multi-fragment",
            "text-search",
        ),
        _query(
            "Q10",
            f'for $a in collection("{c}")/article'
            ' where $a/prolog/genre = "demo" return $a/body',
            "whole bodies of demo articles (big result)",
            "multi-fragment",
            "big-result",
        ),
    ]


# ----------------------------------------------------------------------
# Cstore — hybrid experiments (StoreHyb, Fig. 7d)
# ----------------------------------------------------------------------
def store_queries(collection: str = "Cstore") -> list[BenchQuery]:
    """Items queries adapted to the SD store, mostly returning whole Items
    (the paper's main performance problem), plus the two Items-pruning
    queries (Q9, Q10) and the aggregation (Q11)."""
    c = collection
    items = f'collection("{c}")/Store/Items/Item'
    return [
        _query(
            "Q1",
            f'for $i in {items} where $i/Code = "I-000050" return $i',
            "point lookup returning the whole Item",
            "predicate",
            "point",
            "big-result",
        ),
        _query(
            "Q2",
            f'for $i in {items} where $i/Section = "CD" return $i',
            "fragmentation-matching selection, whole Items",
            "predicate",
            "matches-fragmentation",
            "big-result",
        ),
        _query(
            "Q3",
            f'for $i in {items} where $i/Release >= "2004-01-01" return $i',
            "date range, whole Items",
            "predicate",
            "range",
            "big-result",
        ),
        _query(
            "Q4",
            f'for $i in {items} where $i/Section = "DVD" return $i',
            "another fragmentation-matching selection",
            "predicate",
            "matches-fragmentation",
            "big-result",
        ),
        _query(
            "Q5",
            f'for $i in {items}'
            ' where contains($i/Description, "good") return $i',
            "text search, whole Items",
            "text-search",
            "big-result",
        ),
        _query(
            "Q6",
            f'for $i in {items}'
            ' where contains($i/Description, "good") and $i/Section = "DVD"'
            " return $i",
            "text search + selection, whole Items",
            "text-search",
            "matches-fragmentation",
            "big-result",
        ),
        _query(
            "Q7",
            f'for $i in {items}'
            ' where $i/Release >= "2003-01-01" return $i/Code/text()',
            "range predicate returning codes only",
            "predicate",
            "range",
        ),
        _query(
            "Q8",
            f'for $i in {items}'
            ' where contains($i/Description, "good") return $i/Name/text()',
            "text search returning names only",
            "text-search",
        ),
        _query(
            "Q9",
            f'for $s in collection("{c}")/Store/Sections/SectionEntry'
            " return $s/Name/text()",
            "section names (prunes the Items element)",
            "prunes-items",
        ),
        _query(
            "Q10",
            f'for $e in collection("{c}")/Store/Employees/Employee'
            " return $e/Name/text()",
            "employee names (prunes the Items element)",
            "prunes-items",
        ),
        _query(
            "Q11",
            f'count(for $i in {items}'
            ' where contains($i/Description, "good") return $i)',
            "aggregation over a text search",
            "text-search",
            "aggregation",
        ),
    ]


def queries_by_id(queries: list[BenchQuery]) -> dict[str, BenchQuery]:
    return {query.qid: query for query in queries}
