"""ToXgene stand-in: template-based synthetic XML generation.

The paper generated its databases with ToXgene (Barbosa et al., WebDB'02),
a template-based generator. This module reproduces the capabilities those
databases need: element templates with cardinality ranges, value
generators (word text with optional injected terms, numbers, dates,
weighted choices, counters), and a seeded RNG for reproducibility.

Example::

    item = NodeTemplate(
        "Item",
        children=[
            child(NodeTemplate("Code", value=Counter("I-{:06d}"))),
            child(NodeTemplate("Section", value=Choice(SECTIONS, WEIGHTS))),
            child(NodeTemplate("Description", value=Words(30, 80,
                  inject=("good", 0.25)))),
            child(picture_template, min_occurs=0, max_occurs=5),
        ],
    )
    gen = ToXgene(seed=42)
    document = gen.generate_document(item, name="item-000001.xml")
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import XMLNode

#: A compact word list; realistic enough for full-text indexes to have a
#: non-trivial vocabulary, small enough to keep generation fast.
DEFAULT_VOCABULARY = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliet kilo "
    "lima mike november oscar papa quebec romeo sierra tango uniform victor "
    "whiskey xray yankee zulu amber basic clever driven eager formal grand "
    "humble ideal joyful keen lively modest noble open proud quick rapid "
    "solid tender urban vivid warm young zesty bright calm deep"
).split()
DEFAULT_VOCABULARY = tuple(DEFAULT_VOCABULARY)


class ValueGenerator(abc.ABC):
    """Generates leaf text values."""

    @abc.abstractmethod
    def generate(self, rng: random.Random) -> str:
        ...


@dataclass
class Constant(ValueGenerator):
    """Always the same value."""

    value: str

    def generate(self, rng: random.Random) -> str:
        return self.value


@dataclass
class Counter(ValueGenerator):
    """A sequential counter formatted through ``fmt`` (e.g. ``"I-{:06d}"``)."""

    fmt: str = "{}"
    start: int = 1
    _next: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self._next = self.start

    def generate(self, rng: random.Random) -> str:
        value = self.fmt.format(self._next)
        self._next += 1
        return value

    def reset(self) -> None:
        self._next = self.start


@dataclass
class Words(ValueGenerator):
    """``min_words..max_words`` random words, optionally injecting a term.

    ``inject=(term, probability)`` inserts ``term`` at a random position
    with the given probability — how the paper's databases get documents
    that do / do not match text-search predicates like
    ``contains(//Description, "good")``.
    """

    min_words: int
    max_words: int
    vocabulary: Sequence[str] = DEFAULT_VOCABULARY
    inject: Optional[tuple[str, float]] = None

    def generate(self, rng: random.Random) -> str:
        count = rng.randint(self.min_words, self.max_words)
        words = [rng.choice(self.vocabulary) for _ in range(count)]
        if self.inject is not None:
            term, probability = self.inject
            if rng.random() < probability:
                words.insert(rng.randrange(len(words) + 1), term)
        return " ".join(words)


@dataclass
class IntRange(ValueGenerator):
    """A uniform integer in ``[low, high]``."""

    low: int
    high: int

    def generate(self, rng: random.Random) -> str:
        return str(rng.randint(self.low, self.high))


@dataclass
class DecimalRange(ValueGenerator):
    """A uniform decimal in ``[low, high]`` with ``digits`` decimals."""

    low: float
    high: float
    digits: int = 2

    def generate(self, rng: random.Random) -> str:
        return f"{rng.uniform(self.low, self.high):.{self.digits}f}"


@dataclass
class DateRange(ValueGenerator):
    """An ISO date between two years (uniform per component)."""

    start_year: int = 2000
    end_year: int = 2005

    def generate(self, rng: random.Random) -> str:
        year = rng.randint(self.start_year, self.end_year)
        month = rng.randint(1, 12)
        day = rng.randint(1, 28)
        return f"{year:04d}-{month:02d}-{day:02d}"


@dataclass
class Choice(ValueGenerator):
    """A weighted choice among fixed values (non-uniform distributions)."""

    values: Sequence[str]
    weights: Optional[Sequence[float]] = None

    def generate(self, rng: random.Random) -> str:
        if self.weights is None:
            return rng.choice(list(self.values))
        return rng.choices(list(self.values), weights=list(self.weights), k=1)[0]


@dataclass
class ChildSpec:
    """One child slot of a template, with its cardinality range."""

    template: "NodeTemplate"
    min_occurs: int = 1
    max_occurs: int = 1

    def occurrences(self, rng: random.Random) -> int:
        if self.min_occurs == self.max_occurs:
            return self.min_occurs
        return rng.randint(self.min_occurs, self.max_occurs)


def child(
    template: "NodeTemplate", min_occurs: int = 1, max_occurs: Optional[int] = None
) -> ChildSpec:
    """Shorthand :class:`ChildSpec` constructor (``max`` defaults to ``min``)."""
    return ChildSpec(
        template,
        min_occurs=min_occurs,
        max_occurs=max_occurs if max_occurs is not None else min_occurs,
    )


@dataclass
class NodeTemplate:
    """Template of one element: attributes, leaf value or child slots."""

    label: str
    children: list[ChildSpec] = field(default_factory=list)
    attributes: dict[str, ValueGenerator] = field(default_factory=dict)
    value: Optional[ValueGenerator] = None

    def instantiate(self, rng: random.Random) -> XMLNode:
        node = XMLNode.element(self.label)
        for name, generator in self.attributes.items():
            node.append(XMLNode.attribute(name, generator.generate(rng)))
        if self.value is not None:
            text = self.value.generate(rng)
            if text:
                node.append(XMLNode.text(text))
            return node
        for spec in self.children:
            for _ in range(spec.occurrences(rng)):
                node.append(spec.template.instantiate(rng))
        return node


class ToXgene:
    """The generator: templates + seeded RNG → documents/collections."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    def generate_node(self, template: NodeTemplate) -> XMLNode:
        return template.instantiate(self.rng)

    def generate_document(
        self, template: NodeTemplate, name: Optional[str] = None
    ) -> XMLDocument:
        return XMLDocument(template.instantiate(self.rng), name=name)

    def generate_documents(
        self,
        template: NodeTemplate,
        count: int,
        name_fmt: str = "doc-{:06d}.xml",
    ) -> list[XMLDocument]:
        return [
            self.generate_document(template, name=name_fmt.format(index))
            for index in range(count)
        ]
