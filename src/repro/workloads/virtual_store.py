"""The virtual-store workload (paper Figure 1).

Builds the ``Svirtual_store`` schema, the two repositories derived from it
(``Citems`` — MD, one document per Item; ``Cstore`` — SD, one big Store
document), and the fragmentation designs of the paper's experiments:

* ``ItemsSHor`` — Citems with ~2KB documents ("elements PriceHistory and
  ImagesList with zero occurrences"), horizontally fragmented by Section
  into 2/4/8 fragments with a non-uniform document distribution;
* ``ItemsLHor`` — same design over ~80KB documents (price history and
  picture lists populated);
* ``StoreHyb`` — Cstore hybrid-fragmented per Figure 4: a remainder
  fragment pruning ``/Store/Items`` plus Section-based hybrid fragments
  over the items.
"""

from __future__ import annotations

from typing import Optional

from repro.datamodel.collection import Collection, RepositoryKind
from repro.partix.fragments import (
    FragmentationSchema,
    HorizontalFragment,
    HybridFragment,
    VerticalFragment,
)
from repro.paths.predicates import And, Or, Predicate, eq, ne
from repro.workloads.toxgene import (
    Choice,
    Counter,
    DateRange,
    DecimalRange,
    NodeTemplate,
    ToXgene,
    Words,
    child,
)
from repro.xschema.schema import AttributeDecl, ChildDecl, ElementDecl, Schema
from repro.xschema.types import SimpleType

#: Sections sold by the virtual store. The weights give the non-uniform
#: document distribution the paper used for its horizontal fragments.
SECTIONS = (
    "CD",
    "DVD",
    "Book",
    "Electronics",
    "Games",
    "Toys",
    "Garden",
    "Software",
)
SECTION_WEIGHTS = (0.28, 0.20, 0.16, 0.10, 0.09, 0.07, 0.06, 0.04)

ITEMS_COLLECTION = "Citems"
STORE_COLLECTION = "Cstore"


# ----------------------------------------------------------------------
# Schema (Figure 1a)
# ----------------------------------------------------------------------
def virtual_store_schema() -> Schema:
    """The ``Svirtual_store`` schema of Figure 1(a)."""
    schema = Schema("Svirtual_store")
    schema.element("Code", content=SimpleType.STRING)
    schema.element("Name", content=SimpleType.STRING)
    schema.element("Description", content=SimpleType.STRING)
    schema.element("Section", content=SimpleType.STRING)
    schema.element("Release", content=SimpleType.DATE)
    schema.element("Price", content=SimpleType.DECIMAL)
    schema.element("ModificationDate", content=SimpleType.DATE)
    schema.element("OriginalPath", content=SimpleType.STRING)
    schema.element("ThumbPath", content=SimpleType.STRING)
    schema.element(
        "Characteristics",
        children=[ChildDecl("Name"), ChildDecl("Description")],
    )
    schema.element(
        "Picture",
        children=[
            ChildDecl("Name"),
            ChildDecl("Description", min_occurs=0),
            ChildDecl("ModificationDate"),
            ChildDecl("OriginalPath"),
            ChildDecl("ThumbPath"),
        ],
    )
    schema.element(
        "PictureList", children=[ChildDecl("Picture", min_occurs=1, max_occurs=None)]
    )
    schema.element(
        "PriceHistory",
        children=[ChildDecl("Price"), ChildDecl("ModificationDate")],
    )
    schema.element(
        "PricesHistory",
        children=[ChildDecl("PriceHistory", min_occurs=1, max_occurs=None)],
    )
    schema.element(
        "Item",
        children=[
            ChildDecl("Code"),
            ChildDecl("Name"),
            ChildDecl("Description"),
            ChildDecl("Section"),
            ChildDecl("Release", min_occurs=0),
            ChildDecl("Characteristics", min_occurs=0, max_occurs=None),
            ChildDecl("PictureList", min_occurs=0),
            ChildDecl("PricesHistory", min_occurs=0),
        ],
    )
    schema.element(
        "SectionEntry",
        children=[ChildDecl("Code"), ChildDecl("Name")],
    )
    schema.element(
        "Sections",
        children=[ChildDecl("SectionEntry", min_occurs=1, max_occurs=None)],
    )
    schema.element("Items", children=[ChildDecl("Item", min_occurs=1, max_occurs=None)])
    schema.element(
        "Employee", children=[ChildDecl("Code"), ChildDecl("Name")]
    )
    schema.element(
        "Employees", children=[ChildDecl("Employee", min_occurs=1, max_occurs=None)]
    )
    schema.element(
        "Store",
        children=[
            ChildDecl("Sections"),
            ChildDecl("Items"),
            ChildDecl("Employees"),
        ],
    )
    return schema


# ----------------------------------------------------------------------
# Templates
# ----------------------------------------------------------------------
def _characteristics_template() -> NodeTemplate:
    return NodeTemplate(
        "Characteristics",
        children=[
            child(NodeTemplate("Name", value=Words(1, 3))),
            child(NodeTemplate("Description", value=Words(4, 10))),
        ],
    )


def _picture_template() -> NodeTemplate:
    return NodeTemplate(
        "Picture",
        children=[
            child(NodeTemplate("Name", value=Words(1, 3))),
            child(NodeTemplate("Description", value=Words(60, 90)), 0, 1),
            child(NodeTemplate("ModificationDate", value=DateRange(2001, 2005))),
            child(NodeTemplate("OriginalPath", value=Words(2, 3))),
            child(NodeTemplate("ThumbPath", value=Words(2, 3))),
        ],
    )


def _price_history_template() -> NodeTemplate:
    return NodeTemplate(
        "PriceHistory",
        children=[
            child(NodeTemplate("Price", value=DecimalRange(1.0, 500.0))),
            child(NodeTemplate("ModificationDate", value=DateRange(2000, 2005))),
        ],
    )


def item_template(kind: str = "small", code_counter: Optional[Counter] = None) -> NodeTemplate:
    """Template of an Item document.

    ``kind="small"`` yields ~2KB documents (ItemsSHor: no price history,
    no pictures); ``kind="large"`` yields ~80KB documents (ItemsLHor).
    """
    code = code_counter if code_counter is not None else Counter("I-{:06d}")
    base = [
        child(NodeTemplate("Code", value=code)),
        child(NodeTemplate("Name", value=Words(2, 4))),
        child(
            NodeTemplate(
                "Description", value=Words(150, 250, inject=("good", 0.25))
            )
        ),
        child(
            NodeTemplate(
                "Section", value=Choice(SECTIONS, SECTION_WEIGHTS)
            )
        ),
        child(NodeTemplate("Release", value=DateRange(2000, 2005))),
        child(_characteristics_template(), min_occurs=1, max_occurs=4),
    ]
    if kind == "small":
        return NodeTemplate("Item", children=base)
    if kind == "large":
        # ~80KB documents. The byte budget is tilted toward text content
        # (long description, characteristic and picture descriptions) so
        # large documents are *less* element-dense than the 2KB ones —
        # matching the paper's observation that the DBMS handles few large
        # documents better than many small ones (per-document overheads).
        large_base = list(base)
        large_base[2] = child(
            NodeTemplate(
                "Description", value=Words(2800, 3600, inject=("good", 0.25))
            )
        )
        large_base[5] = child(_large_characteristics_template(), 25, 35)
        return NodeTemplate(
            "Item",
            children=large_base
            + [
                child(NodeTemplate(
                    "PictureList",
                    children=[child(_picture_template(), 30, 40)],
                ), min_occurs=1, max_occurs=1),
                child(NodeTemplate(
                    "PricesHistory",
                    children=[child(_price_history_template(), 60, 90)],
                ), min_occurs=1, max_occurs=1),
            ],
        )
    raise ValueError(f"unknown item kind {kind!r} (use 'small' or 'large')")


def _large_characteristics_template() -> NodeTemplate:
    return NodeTemplate(
        "Characteristics",
        children=[
            child(NodeTemplate("Name", value=Words(1, 3))),
            child(NodeTemplate("Description", value=Words(140, 220))),
        ],
    )


# ----------------------------------------------------------------------
# Collection builders
# ----------------------------------------------------------------------
def build_items_collection(
    count: int,
    kind: str = "small",
    seed: int = 42,
    name: str = ITEMS_COLLECTION,
) -> Collection:
    """Build the Citems MD collection: one document per Item."""
    generator = ToXgene(seed=seed)
    template = item_template(kind)
    documents = generator.generate_documents(
        template, count, name_fmt="item-{:06d}.xml"
    )
    return Collection(
        name,
        documents,
        schema=virtual_store_schema(),
        root_type="Item",
        kind=RepositoryKind.MULTIPLE_DOCUMENTS,
    )


def build_store_collection(
    item_count: int,
    item_kind: str = "small",
    seed: int = 42,
    name: str = STORE_COLLECTION,
) -> Collection:
    """Build the Cstore SD collection: one Store document."""
    generator = ToXgene(seed=seed)
    section_entry = NodeTemplate(
        "SectionEntry",
        children=[
            child(NodeTemplate("Code", value=Counter("S-{:03d}"))),
            child(NodeTemplate("Name", value=Words(1, 2))),
        ],
    )
    employee = NodeTemplate(
        "Employee",
        children=[
            child(NodeTemplate("Code", value=Counter("E-{:04d}"))),
            child(NodeTemplate("Name", value=Words(2, 3))),
        ],
    )
    store = NodeTemplate(
        "Store",
        children=[
            child(NodeTemplate("Sections", children=[child(section_entry, len(SECTIONS))])),
            child(NodeTemplate("Items", children=[child(item_template(item_kind), item_count)])),
            child(NodeTemplate("Employees", children=[child(employee, 10)])),
        ],
    )
    document = generator.generate_document(store, name="store.xml")
    return Collection(
        name,
        [document],
        schema=virtual_store_schema(),
        root_type="Store",
        kind=RepositoryKind.SINGLE_DOCUMENT,
    )


# ----------------------------------------------------------------------
# Fragmentation designs
# ----------------------------------------------------------------------
def _section_groups(fragment_count: int) -> list[tuple[str, ...]]:
    if fragment_count not in (2, 4, 8):
        raise ValueError("the paper's designs use 2, 4 or 8 fragments")
    group_size = len(SECTIONS) // fragment_count
    return [
        tuple(SECTIONS[index * group_size : (index + 1) * group_size])
        for index in range(fragment_count)
    ]


def _group_predicate(group: tuple[str, ...], residual: bool) -> Predicate:
    """Equality disjunction for a group; the last group is the residual
    (conjunction of ≠) so completeness holds for any Section value."""
    if residual:
        others = [s for s in SECTIONS if s not in group]
        parts = tuple(ne("/Item/Section", section) for section in others)
        return parts[0] if len(parts) == 1 else And(parts)
    parts = tuple(eq("/Item/Section", section) for section in group)
    return parts[0] if len(parts) == 1 else Or(parts)


def items_horizontal_fragmentation(
    fragment_count: int, collection: str = ITEMS_COLLECTION
) -> FragmentationSchema:
    """The ItemsSHor/ItemsLHor design: by Section, non-uniform sizes.

    The section weights are skewed, so fragments hold different numbers
    of documents — the paper's "non-uniform document distribution".
    """
    groups = _section_groups(fragment_count)
    fragments = [
        HorizontalFragment(
            f"F{index + 1}",
            collection,
            predicate=_group_predicate(group, residual=(index == len(groups) - 1)),
        )
        for index, group in enumerate(groups)
    ]
    return FragmentationSchema(collection, fragments, root_label="Item")


def _unit_predicate(group: tuple[str, ...], residual: bool) -> Predicate:
    if residual:
        others = [s for s in SECTIONS if s not in group]
        parts = tuple(ne("/Item/Section", section) for section in others)
        return parts[0] if len(parts) == 1 else And(parts)
    parts = tuple(eq("/Item/Section", section) for section in group)
    return parts[0] if len(parts) == 1 else Or(parts)


def store_hybrid_fragmentation(
    item_fragment_count: int = 4, collection: str = STORE_COLLECTION
) -> FragmentationSchema:
    """The StoreHyb design (Figure 4 + §5).

    "Fragment F1 prunes /Store/Items, while the remaining 4 fragments are
    all about Items, each of them horizontally fragmented over
    /Store/Items/Item/Section."
    """
    groups = _section_groups(item_fragment_count)
    fragments = [
        VerticalFragment(
            "F1",
            collection,
            path="/Store",
            prune=("/Store/Items",),
            stub_prunes=True,
        )
    ]
    for index, group in enumerate(groups):
        fragments.append(
            HybridFragment(
                f"F{index + 2}",
                collection,
                path="/Store/Items",
                unit_label="Item",
                predicate=_unit_predicate(
                    group, residual=(index == len(groups) - 1)
                ),
            )
        )
    return FragmentationSchema(collection, fragments, root_label="Store")
