"""Sites and the simulated cluster.

A *site* is one DBMS node reachable through a PartiX driver. The
:class:`Cluster` is the set of sites the middleware coordinates. Following
the paper's methodology, inter-site parallelism is *simulated*: every
sub-query actually runs (sequentially, in-process), its wall-clock time is
measured, and the parallel elapsed time of a round is the maximum of the
per-site busy times ("we have used the time spent by the slowest site to
produce the result", §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from typing import TYPE_CHECKING

from repro.engine.stats import QueryResult
from repro.errors import ClusterError
from repro.paths.predicates import Predicate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.partix.driver import PartixDriver


class Site:
    """One DBMS node of the cluster."""

    def __init__(
        self,
        name: str,
        driver: Optional["PartixDriver"] = None,
        use_indexes: bool = True,
        per_document_overhead: float = 0.0,
        shard_workers: int = 0,
    ):
        self.name = name
        if driver is None:
            # Imported lazily: partix drivers sit above the cluster layer.
            from repro.engine.database import XMLEngine
            from repro.partix.driver import MiniXDriver

            driver = MiniXDriver(
                XMLEngine(
                    name,
                    use_indexes=use_indexes,
                    per_document_overhead=per_document_overhead,
                    shard_workers=shard_workers,
                )
            )
        self.driver = driver

    def execute(
        self,
        query: str,
        default_collection: Optional[str] = None,
        extra_predicate: Optional[Predicate] = None,
        use_indexes: Optional[bool] = None,
        parallel_degree: Optional[int] = None,
    ) -> QueryResult:
        # The overrides travel only when set — mirroring the wire
        # protocol, and keeping duck-typed driver substitutes with the
        # historical three-argument signature working on plain lanes.
        kwargs = {}
        if use_indexes is not None:
            kwargs["use_indexes"] = use_indexes
        if parallel_degree is not None:
            kwargs["parallel_degree"] = parallel_degree
        return self.driver.execute(
            query,
            default_collection=default_collection,
            extra_predicate=extra_predicate,
            **kwargs,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Site({self.name!r})"


class Cluster:
    """A named set of sites."""

    def __init__(self, sites: Iterable[Site] = ()):
        self._sites: dict[str, Site] = {}
        for site in sites:
            self.add(site)

    @classmethod
    def with_sites(
        cls,
        count: int,
        prefix: str = "site",
        use_indexes: bool = True,
        per_document_overhead: float = 0.0,
        shard_workers: int = 0,
    ) -> "Cluster":
        """A cluster of ``count`` fresh in-memory MiniX sites.

        ``use_indexes`` toggles document-level index pruning at every
        site — the paper-faithful benchmarks run with it off: eXist (2005)
        evaluated generic XQuery predicates by iterating every document of
        the queried collection. ``per_document_overhead`` is the simulated
        per-document access cost (see ``XMLEngine``); ``shard_workers``
        sizes each site's intra-site worker pool (0 = serial).
        """
        return cls(
            Site(
                f"{prefix}{index}",
                use_indexes=use_indexes,
                per_document_overhead=per_document_overhead,
                shard_workers=shard_workers,
            )
            for index in range(count)
        )

    def add(self, site: Site) -> Site:
        if site.name in self._sites:
            raise ClusterError(f"site {site.name!r} already exists")
        self._sites[site.name] = site
        return site

    def site(self, name: str) -> Site:
        try:
            return self._sites[name]
        except KeyError:
            raise ClusterError(f"no site named {name!r}") from None

    def site_names(self) -> list[str]:
        return list(self._sites)

    def sites(self) -> list[Site]:
        return list(self._sites.values())

    def __len__(self) -> int:
        return len(self._sites)

    def __contains__(self, name: str) -> bool:
        return name in self._sites


@dataclass
class SubQueryExecution:
    """Metrics of one sub-query run at one site.

    ``bytes_sent``/``bytes_received`` are the transport's byte counts
    for this sub-query: real framed socket bytes when ``on_wire`` is
    True (tcp execution), otherwise the payload sizes that *would* have
    traveled (query text out, serialized result back) — the quantities
    the :class:`~repro.cluster.network.NetworkModel` estimates from, now
    recorded so the model can be validated against measured transfers.
    """

    site: str
    fragment: str
    query: str
    result: QueryResult
    bytes_sent: int = 0
    bytes_received: int = 0
    on_wire: bool = False
    #: Identity of the physical-plan node this execution realized, plus
    #: the plan's estimate for it — set by the plan executor so measured
    #: per-lane timings can be compared against the estimates.
    plan_node: Optional[str] = None
    estimated_seconds: Optional[float] = None
    #: How many times the dispatcher re-aimed this sub-query at another
    #: replica before this execution succeeded (0 = the planned site
    #: answered), plus the site targeted by each attempt in order —
    #: ``attempt_sites[-1] == site`` always holds.
    failover_count: int = 0
    attempt_sites: list = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return self.result.elapsed_seconds

    @property
    def result_bytes(self) -> int:
        return self.result.result_bytes


@dataclass
class ParallelRound:
    """One round of sub-queries executed 'in parallel' across sites.

    ``parallel_seconds`` is the slowest site's busy time (a site running
    several sub-queries sums them); ``executions`` keeps every sub-query's
    own metrics for reporting.

    ``measured_wall_seconds`` is the *real* wall-clock time the round took
    on this machine — in ``"simulated"`` execution mode that is the
    sequential loop's duration, in ``"threads"`` mode the concurrent
    dispatcher's, so benchmarks can print simulated parallel time and
    measured parallel time side by side.

    Streaming rounds additionally record ``streamed=True``,
    ``peak_buffered_bytes`` (the coordinator's largest in-memory partial
    buffering — bounded by spill threshold × active lanes, not by result
    size) and ``first_chunk_seconds`` (sink creation to first arriving
    chunk: the round's time-to-first-byte).
    """

    executions: list[SubQueryExecution] = field(default_factory=list)
    measured_wall_seconds: float = 0.0
    streamed: bool = False
    peak_buffered_bytes: int = 0
    first_chunk_seconds: Optional[float] = None

    @property
    def failover_count(self) -> int:
        """Replica failovers across the round's executions."""
        return sum(execution.failover_count for execution in self.executions)

    @property
    def parallel_seconds(self) -> float:
        busy: dict[str, float] = {}
        for execution in self.executions:
            busy[execution.site] = busy.get(execution.site, 0.0) + execution.elapsed
        return max(busy.values(), default=0.0)

    @property
    def sequential_seconds(self) -> float:
        return sum(execution.elapsed for execution in self.executions)

    @property
    def result_sizes(self) -> list[int]:
        return [execution.result_bytes for execution in self.executions]

    @property
    def total_result_bytes(self) -> int:
        return sum(self.result_sizes)

    @property
    def total_bytes_sent(self) -> int:
        """Transport bytes sent for the round (see SubQueryExecution)."""
        return sum(execution.bytes_sent for execution in self.executions)

    @property
    def total_bytes_received(self) -> int:
        """Transport bytes received for the round."""
        return sum(execution.bytes_received for execution in self.executions)

    @property
    def wire_measured(self) -> bool:
        """True when every byte count came off a real socket."""
        return bool(self.executions) and all(
            execution.on_wire for execution in self.executions
        )
