"""Network model of the simulated cluster.

The paper measured communication "by calculating the average size of the
result and dividing it by the Gigabit Ethernet transmission speed" (§5).
:class:`NetworkModel` generalizes that: a per-message latency plus a
bandwidth term, with the coordinator's inbound link shared by all sites
(partial results serialize into the coordinator, so their transfer times
add up — the conservative reading of the paper's methodology).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

GIGABIT_PER_SECOND = 1_000_000_000.0

#: Fallback dispatch-message size when the caller cannot supply the real
#: per-sub-query text sizes.
DEFAULT_QUERY_BYTES = 256


@dataclass(frozen=True)
class NetworkModel:
    """Transmission-time estimator.

    Parameters
    ----------
    bandwidth_bits_per_second:
        Link speed (default: Gigabit Ethernet, as in the paper).
    latency_seconds:
        Fixed per-message cost (query dispatch / result envelope).
    """

    bandwidth_bits_per_second: float = GIGABIT_PER_SECOND
    latency_seconds: float = 0.0001

    def transfer_seconds(self, payload_bytes: int) -> float:
        """Time to move one payload over the link."""
        return self.latency_seconds + (payload_bytes * 8.0) / self.bandwidth_bits_per_second

    def gather_seconds(
        self,
        result_sizes: Sequence[int],
        query_sizes: Optional[Sequence[int]] = None,
        query_bytes: int = DEFAULT_QUERY_BYTES,
    ) -> float:
        """Time to dispatch sub-queries and gather all partial results.

        Dispatch is one message per sub-query, charged at the **actual**
        serialized query size when the caller passes ``query_sizes`` (the
        middleware does — sub-query texts differ per fragment and can far
        exceed a fixed guess); without them, each dispatch falls back to
        ``query_bytes``. Results funnel through the coordinator's single
        inbound link, so their transfer times accumulate.
        """
        if query_sizes is None:
            query_sizes = [query_bytes] * len(result_sizes)
        dispatch = sum(self.transfer_seconds(size) for size in query_sizes)
        gather = sum(self.transfer_seconds(size) for size in result_sizes)
        return dispatch + gather


#: A zero-cost network, used for the paper's "-NT" (no transmission) series.
FREE_NETWORK = NetworkModel(bandwidth_bits_per_second=float("inf"), latency_seconds=0.0)
