"""Concurrent sub-query dispatch (the real counterpart of §5's simulation).

The paper *simulated* inter-site parallelism: sub-queries ran one after
another and the reported parallel time was the slowest site's busy time.
:class:`ParallelDispatcher` executes a round for real — a thread pool with
one worker lane per site, so sub-queries targeting different sites overlap
while sub-queries sharing a site serialize, exactly the schedule the
simulated accounting assumes. The measured wall-clock of the round lands
in ``ParallelRound.measured_wall_seconds``, letting benchmarks print
simulated and real parallel time side by side.

Failure handling is explicit because real dispatch can fail in ways the
sequential loop never did:

* every sub-query gets ``retries`` extra attempts with exponential
  backoff (transient driver errors);
* a per-sub-query ``subquery_timeout`` bounds how long one sub-query may
  take. In-process engine threads cannot be preempted, so the timeout is
  enforced *after the fact*: an over-budget attempt is discarded and
  counted as a failure (a driver for a remote DBMS would enforce the same
  budget on the wire);
* an exhausted sub-query is handled per ``failure_policy`` —
  ``"fail_fast"`` cancels the remaining work and raises
  :class:`~repro.errors.DispatchError`, ``"degrade"`` drops the fragment
  from the answer and records a note so the caller can surface the
  partial-result caveat.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, TYPE_CHECKING

from repro.cluster.site import Cluster, ParallelRound, Site, SubQueryExecution
from repro.errors import DispatchError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.partix.decomposer import SubQuery

FAIL_FAST = "fail_fast"
DEGRADE = "degrade"


@dataclass
class SubQueryFailure:
    """One sub-query that exhausted all its attempts."""

    site: str
    fragment: str
    query: str
    attempts: int
    error: Exception
    timed_out: bool = False

    def describe(self) -> str:
        kind = "timed out" if self.timed_out else "failed"
        return (
            f"sub-query for fragment {self.fragment!r} at site {self.site!r}"
            f" {kind} after {self.attempts} attempt(s): {self.error}"
        )


@dataclass
class DispatchOutcome:
    """Everything a round of concurrent dispatch produced.

    ``executions_by_index`` aligns with the dispatched sub-query list —
    ``None`` marks a sub-query that failed (degrade policy) or was
    cancelled — so the caller can re-pair results with their plan entries
    in deterministic plan order. ``round`` holds the surviving executions
    (already in plan order) plus the measured wall-clock.
    """

    round: ParallelRound
    executions_by_index: list[Optional[SubQueryExecution]]
    failures: list[SubQueryFailure] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    cancelled: int = 0

    @property
    def complete(self) -> bool:
        return not self.failures and not self.cancelled


class ParallelDispatcher:
    """Executes one round of sub-queries concurrently across sites.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrent site lanes. Defaults to one worker per
        distinct site in the round (full fan-out).
    subquery_timeout:
        Per-sub-query budget in seconds (see module docstring for the
        after-the-fact enforcement caveat). ``None`` disables it.
    retries:
        Extra attempts per sub-query after the first failure/timeout.
    backoff_seconds / backoff_multiplier:
        Exponential backoff between attempts: the wait before retry *n*
        (0-based) is ``backoff_seconds * backoff_multiplier ** n``.
    failure_policy:
        ``"fail_fast"`` (default) — cancel outstanding work and raise
        :class:`DispatchError` once any sub-query exhausts its attempts;
        ``"degrade"`` — keep going, drop the failed fragment from the
        answer, and record an explanatory note.
    sleep:
        Injection point for the backoff sleep (tests pass a recorder).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        subquery_timeout: Optional[float] = None,
        retries: int = 1,
        backoff_seconds: float = 0.02,
        backoff_multiplier: float = 2.0,
        failure_policy: str = FAIL_FAST,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if failure_policy not in (FAIL_FAST, DEGRADE):
            raise ValueError(
                f"failure_policy must be {FAIL_FAST!r} or {DEGRADE!r},"
                f" got {failure_policy!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.max_workers = max_workers
        self.subquery_timeout = subquery_timeout
        self.retries = retries
        self.backoff_seconds = backoff_seconds
        self.backoff_multiplier = backoff_multiplier
        self.failure_policy = failure_policy
        self._sleep = sleep

    # ------------------------------------------------------------------
    def dispatch(
        self,
        cluster: Cluster,
        subqueries: Sequence["SubQuery"],
        default_collection: Optional[str] = None,
    ) -> DispatchOutcome:
        """Run ``subqueries`` concurrently; one worker lane per site."""
        lanes: dict[str, list[tuple[int, "SubQuery"]]] = {}
        for index, subquery in enumerate(subqueries):
            lanes.setdefault(subquery.site, []).append((index, subquery))
        # Resolve sites up front: an unknown site is a plan error, not a
        # runtime sub-query failure, and raises regardless of policy.
        sites = {name: cluster.site(name) for name in lanes}

        results: list[Optional[SubQueryExecution]] = [None] * len(subqueries)
        failures: list[SubQueryFailure] = []
        failures_lock = threading.Lock()
        cancel = threading.Event()
        skipped = [0]

        wall_started = time.perf_counter()
        if lanes:
            workers = len(lanes)
            if self.max_workers is not None:
                workers = min(workers, self.max_workers)
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="partix-dispatch"
            ) as pool:
                futures = [
                    pool.submit(
                        self._run_lane,
                        sites[name],
                        lane,
                        default_collection,
                        results,
                        failures,
                        failures_lock,
                        cancel,
                        skipped,
                    )
                    for name, lane in lanes.items()
                ]
                for future in futures:
                    future.result()
        wall_seconds = time.perf_counter() - wall_started

        if failures and self.failure_policy == FAIL_FAST:
            raise DispatchError(
                "; ".join(failure.describe() for failure in failures),
                failures=failures,
            )
        notes = [f"degraded: {failure.describe()}" for failure in failures]
        if skipped[0]:
            notes.append(
                f"cancelled: {skipped[0]} sub-quer"
                f"{'y' if skipped[0] == 1 else 'ies'} never dispatched"
            )
        round_ = ParallelRound(
            executions=[result for result in results if result is not None],
            measured_wall_seconds=wall_seconds,
        )
        return DispatchOutcome(
            round=round_,
            executions_by_index=results,
            failures=failures,
            notes=notes,
            cancelled=skipped[0],
        )

    # ------------------------------------------------------------------
    def _run_lane(
        self,
        site: Site,
        lane: list[tuple[int, "SubQuery"]],
        default_collection: Optional[str],
        results: list[Optional[SubQueryExecution]],
        failures: list[SubQueryFailure],
        failures_lock: threading.Lock,
        cancel: threading.Event,
        skipped: list[int],
    ) -> None:
        """One site's sub-queries, in plan order, with retry + timeout."""
        for position, (index, subquery) in enumerate(lane):
            if cancel.is_set():
                with failures_lock:
                    skipped[0] += len(lane) - position
                return
            failure = self._run_subquery(
                site, index, subquery, default_collection, results, cancel
            )
            if failure is not None:
                with failures_lock:
                    failures.append(failure)
                    if self.failure_policy == FAIL_FAST:
                        skipped[0] += len(lane) - position - 1
                if self.failure_policy == FAIL_FAST:
                    cancel.set()
                    return

    def _run_subquery(
        self,
        site: Site,
        index: int,
        subquery: "SubQuery",
        default_collection: Optional[str],
        results: list[Optional[SubQueryExecution]],
        cancel: threading.Event,
    ) -> Optional[SubQueryFailure]:
        """One sub-query with its retry/backoff/timeout envelope."""
        failure: Optional[SubQueryFailure] = None
        for attempt in range(self.retries + 1):
            if cancel.is_set():
                return failure
            started = time.perf_counter()
            try:
                result = site.execute(
                    subquery.query, default_collection=default_collection
                )
            except Exception as exc:
                failure = SubQueryFailure(
                    site=subquery.site,
                    fragment=subquery.fragment,
                    query=subquery.query,
                    attempts=attempt + 1,
                    error=exc,
                )
            else:
                took = time.perf_counter() - started
                if (
                    self.subquery_timeout is not None
                    and took > self.subquery_timeout
                ):
                    failure = SubQueryFailure(
                        site=subquery.site,
                        fragment=subquery.fragment,
                        query=subquery.query,
                        attempts=attempt + 1,
                        error=TimeoutError(
                            f"exceeded {self.subquery_timeout:.3f}s budget"
                            f" (took {took:.3f}s)"
                        ),
                        timed_out=True,
                    )
                else:
                    # Each slot is written by exactly one lane thread.
                    results[index] = SubQueryExecution(
                        site=subquery.site,
                        fragment=subquery.fragment,
                        query=subquery.query,
                        result=result,
                    )
                    return None
            if attempt < self.retries:
                self._sleep(
                    self.backoff_seconds * self.backoff_multiplier ** attempt
                )
        return failure
