"""Concurrent sub-query dispatch (the real counterpart of §5's simulation).

The paper *simulated* inter-site parallelism: sub-queries ran one after
another and the reported parallel time was the slowest site's busy time.
:class:`ParallelDispatcher` executes a round for real — a thread pool with
one worker lane per site, so sub-queries targeting different sites overlap
while sub-queries sharing a site serialize, exactly the schedule the
simulated accounting assumes. The measured wall-clock of the round lands
in ``ParallelRound.measured_wall_seconds``, letting benchmarks print
simulated and real parallel time side by side.

Failure handling is explicit because real dispatch can fail in ways the
sequential loop never did:

* every sub-query gets ``retries`` extra attempts with exponential
  backoff (transient driver errors). When the sub-query carries replica
  targets (``SubQuery.replicas``), a retry *rotates* to the next healthy
  replica instead of hammering the site that just failed — only a
  sub-query whose every replica is exhausted falls through to the
  failure policy;
* a shared :class:`~repro.cluster.health.SiteHealth` tracker remembers
  attempt outcomes across sub-queries and rounds: a site failing
  ``ejection_threshold`` times in a row is ejected, and retry rotation
  (plus plan lowering, which consults the same tracker) stops targeting
  it until a timed PING probe readmits it;
* a per-sub-query ``subquery_timeout`` bounds how long one sub-query may
  take. In-process engine threads cannot be preempted, so the timeout is
  enforced *after the fact*: an over-budget attempt is discarded and
  counted as a failure (a driver for a remote DBMS would enforce the same
  budget on the wire);
* an exhausted sub-query is handled per ``failure_policy`` —
  ``"fail_fast"`` cancels the remaining work and raises
  :class:`~repro.errors.DispatchError`, ``"degrade"`` drops the fragment
  from the answer and records a note so the caller can surface the
  partial-result caveat.

The dispatcher is transport-agnostic: it drives a :class:`Transport`,
which decides where a sub-query physically runs. The built-in
:class:`InProcessTransport` calls a :class:`Cluster`'s engines directly;
:class:`repro.net.client.TcpTransport` sends the same sub-queries to
site-server processes over sockets. The fan-out / retry / fail-fast /
degrade logic is identical either way — only the lane's ``execute``
changes.
"""

from __future__ import annotations

import abc
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union, TYPE_CHECKING

from repro.cluster.health import SiteHealth
from repro.cluster.site import Cluster, ParallelRound, SubQueryExecution
from repro.errors import ClusterError, DispatchError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.plan.spec import SubQuery

FAIL_FAST = "fail_fast"
DEGRADE = "degrade"

#: Sentinel distinguishing "argument omitted" from an explicit ``None``
#: (which means "no budget") for per-dispatch timeout overrides.
_UNSET = object()


class Transport(abc.ABC):
    """Where sub-queries physically run.

    ``resolve`` validates that every site a round targets exists (an
    unknown site is a plan error and must raise
    :class:`~repro.errors.ClusterError` before any work starts).
    ``execute`` runs one sub-query and returns its
    :class:`SubQueryExecution`, including the bytes that crossed (or, in
    process, *would have* crossed) the transport.
    """

    @abc.abstractmethod
    def resolve(self, site_names: Sequence[str]) -> None:
        """Raise ClusterError if any of ``site_names`` is unknown."""

    @abc.abstractmethod
    def execute(
        self,
        subquery: "SubQuery",
        default_collection: Optional[str] = None,
        timeout: Optional[float] = None,
        on_chunk=None,
    ) -> SubQueryExecution:
        """Run one sub-query at its site. ``timeout`` is the per-sub-query
        budget; transports that can enforce it on the wire (sockets)
        should, in-process transports may ignore it (the dispatcher then
        checks the budget after the fact).

        ``on_chunk``, when given, selects streaming: the transport calls
        it with successive byte slices whose concatenation is exactly the
        UTF-8 serialized answer, and the returned execution's result may
        carry an empty ``result_text`` (the bytes already went to the
        callback). Transports with no real stream (in-process) emulate
        the chunking so composition code sees one behavior everywhere."""

    def ping(self, site: str) -> bool:
        """Best-effort liveness probe of ``site``, used to readmit
        ejected sites. Transports with no real health check (the base
        implementation) report True and let execution outcomes decide."""
        return True


class InProcessTransport(Transport):
    """Direct engine calls against a :class:`Cluster` (no sockets).

    The recorded byte counts are the payload sizes that *would* travel —
    query text out, serialized result back — flagged ``on_wire=False``
    so reports can distinguish modeled from measured transfers.
    """

    def __init__(self, cluster: Cluster, chunk_bytes: Optional[int] = None):
        self.cluster = cluster
        if chunk_bytes is None:
            # Imported lazily: repro.net sits above the cluster layer
            # (its client builds on this module's Transport).
            from repro.net.protocol import DEFAULT_CHUNK_BYTES

            chunk_bytes = DEFAULT_CHUNK_BYTES
        self.chunk_bytes = max(1, int(chunk_bytes))

    def resolve(self, site_names: Sequence[str]) -> None:
        for name in site_names:
            self.cluster.site(name)

    def ping(self, site: str) -> bool:
        try:
            self.cluster.site(site)
        except ClusterError:
            return False
        return True

    def execute(
        self,
        subquery: "SubQuery",
        default_collection: Optional[str] = None,
        timeout: Optional[float] = None,
        on_chunk=None,
    ) -> SubQueryExecution:
        site = self.cluster.site(subquery.site)
        result = site.execute(
            subquery.query,
            default_collection=default_collection,
            use_indexes=subquery.use_indexes,
            parallel_degree=subquery.parallel_degree,
        )
        if on_chunk is not None:
            # Chunk emulation: slice the serialized answer into the same
            # chunk_bytes-sized pieces a site server would stream, so the
            # incremental composer exercises identical boundaries (UTF-8
            # splits included) in threads/simulated modes.
            data = result.result_text.encode("utf-8")
            for start in range(0, len(data), self.chunk_bytes):
                on_chunk(data[start:start + self.chunk_bytes])
        return SubQueryExecution(
            site=subquery.site,
            fragment=subquery.fragment,
            query=subquery.query,
            result=result,
            bytes_sent=len(subquery.query.encode("utf-8")),
            bytes_received=result.result_bytes,
            on_wire=False,
        )


class SerialTransport(Transport):
    """Serializes every lane of another transport behind one lock.

    This is the paper's sequential "simulated" round expressed as a
    Transport: the dispatcher still fans lanes out, but executions are
    mutually exclusive, so sub-queries run one at a time exactly like
    the old in-process loop — execution modes stay nothing more than
    Transport choices.
    """

    def __init__(self, inner: Transport):
        self.inner = inner
        self._lock = threading.Lock()

    def resolve(self, site_names: Sequence[str]) -> None:
        self.inner.resolve(site_names)

    def ping(self, site: str) -> bool:
        return self.inner.ping(site)

    def execute(
        self,
        subquery: "SubQuery",
        default_collection: Optional[str] = None,
        timeout: Optional[float] = None,
        on_chunk=None,
    ) -> SubQueryExecution:
        with self._lock:
            return self.inner.execute(
                subquery,
                default_collection=default_collection,
                timeout=timeout,
                on_chunk=on_chunk,
            )


@dataclass
class SubQueryFailure:
    """One sub-query that exhausted all its attempts."""

    site: str
    fragment: str
    query: str
    attempts: int
    error: Exception
    timed_out: bool = False
    #: Site targeted by each attempt, in order (shows failover rotation).
    attempt_sites: list = field(default_factory=list)

    def describe(self) -> str:
        kind = "timed out" if self.timed_out else "failed"
        rotation = ""
        if len(set(self.attempt_sites)) > 1:
            rotation = f" (tried sites {', '.join(self.attempt_sites)})"
        return (
            f"sub-query for fragment {self.fragment!r} at site {self.site!r}"
            f" {kind} after {self.attempts} attempt(s){rotation}: {self.error}"
        )


@dataclass
class DispatchOutcome:
    """Everything a round of concurrent dispatch produced.

    ``executions_by_index`` aligns with the dispatched sub-query list —
    ``None`` marks a sub-query that failed (degrade policy) or was
    cancelled — so the caller can re-pair results with their plan entries
    in deterministic plan order. ``round`` holds the surviving executions
    (already in plan order) plus the measured wall-clock.
    """

    round: ParallelRound
    executions_by_index: list[Optional[SubQueryExecution]]
    failures: list[SubQueryFailure] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    cancelled: int = 0

    @property
    def complete(self) -> bool:
        return not self.failures and not self.cancelled


class ParallelDispatcher:
    """Executes one round of sub-queries concurrently across sites.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrent site lanes. Defaults to one worker per
        distinct site in the round (full fan-out).
    subquery_timeout:
        Per-sub-query budget in seconds (see module docstring for the
        after-the-fact enforcement caveat). ``None`` disables it.
    retries:
        Extra attempts per sub-query after the first failure/timeout.
    backoff_seconds / backoff_multiplier:
        Exponential backoff between attempts: the wait before retry *n*
        (0-based) is ``backoff_seconds * backoff_multiplier ** n``.
    backoff_jitter / jitter_seed:
        ``backoff_jitter`` spreads each wait by a uniform factor in
        ``[1 - j, 1 + j]`` so retries against a struggling site do not
        synchronize. The spread is *deterministic*: it is seeded from
        ``jitter_seed`` plus the sub-query's site/fragment/attempt, so a
        rerun of the same round waits the same amounts (the property the
        differential fuzz harness depends on). Defaults to 0 (off).
    failure_policy:
        ``"fail_fast"`` (default) — cancel outstanding work and raise
        :class:`DispatchError` once any sub-query exhausts its attempts;
        ``"degrade"`` — keep going, drop the failed fragment from the
        answer, and record an explanatory note. Either policy only
        triggers once every replica target of the sub-query is exhausted.
    site_health:
        The shared :class:`~repro.cluster.health.SiteHealth` tracker
        retry rotation consults and reports into. Pass the instance the
        plan lowerer uses so ejections steer both retries *and* new
        plans; defaults to a private tracker.
    sleep:
        Injection point for the backoff sleep (tests pass a recorder).
    clock:
        Injection point for the monotonic clock driving wall timing and
        the shared retry deadline (defaults to ``time.perf_counter``;
        tests pass a fake clock advanced by their ``sleep`` stub so
        timing assertions never depend on real sleeps).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        subquery_timeout: Optional[float] = None,
        retries: int = 1,
        backoff_seconds: float = 0.02,
        backoff_multiplier: float = 2.0,
        backoff_jitter: float = 0.0,
        jitter_seed: int = 0,
        failure_policy: str = FAIL_FAST,
        site_health: Optional[SiteHealth] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if failure_policy not in (FAIL_FAST, DEGRADE):
            raise ValueError(
                f"failure_policy must be {FAIL_FAST!r} or {DEGRADE!r},"
                f" got {failure_policy!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if not 0.0 <= backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be within [0, 1]")
        self.max_workers = max_workers
        self.subquery_timeout = subquery_timeout
        self.retries = retries
        self.backoff_seconds = backoff_seconds
        self.backoff_multiplier = backoff_multiplier
        self.backoff_jitter = backoff_jitter
        self.jitter_seed = jitter_seed
        self.failure_policy = failure_policy
        self.site_health = site_health if site_health is not None else SiteHealth()
        self._sleep = sleep
        self._clock = clock

    def _backoff_wait(
        self,
        subquery: "SubQuery",
        attempt: int,
        target_site: Optional[str] = None,
    ) -> float:
        """Wait before retry ``attempt`` (0-based), jitter applied.

        The jitter key includes the retry's *target* site (which can
        differ from ``subquery.site`` once rotation retargets a replica)
        so two replicas of one fragment never share a jitter schedule.
        """
        wait = self.backoff_seconds * self.backoff_multiplier ** attempt
        if self.backoff_jitter:
            site = target_site if target_site is not None else subquery.site
            key = (
                f"{self.jitter_seed}:{site}:{subquery.fragment}:"
                f"{attempt}"
            )
            spread = self.backoff_jitter * (
                2.0 * random.Random(key).random() - 1.0
            )
            wait = max(0.0, wait * (1.0 + spread))
        return wait

    # ------------------------------------------------------------------
    def dispatch(
        self,
        cluster: Union[Cluster, Transport],
        subqueries: Sequence["SubQuery"],
        default_collection: Optional[str] = None,
        chunk_sink=None,
        subquery_timeout: Optional[float] = _UNSET,
    ) -> DispatchOutcome:
        """Run ``subqueries`` concurrently; one worker lane per site.

        ``cluster`` may be a :class:`Cluster` (wrapped in an
        :class:`InProcessTransport`) or any :class:`Transport` — socket
        lanes to real site servers run through the exact same code path.

        ``chunk_sink`` (e.g. a
        :class:`~repro.partix.composer.IncrementalComposer`) selects
        streaming: before every attempt of sub-query *i* the dispatcher
        calls ``chunk_sink.begin(i)`` (resetting the lane, so a retry can
        never leave duplicate bytes behind), feeds each arriving slice to
        ``chunk_sink.chunk(i, data)``, and calls ``chunk_sink.complete(i)``
        only once the attempt's result is accepted.

        ``subquery_timeout`` overrides the dispatcher's configured budget
        for this round only — the coordinator threads each query's
        remaining deadline through here. Omitting it keeps the configured
        value; an explicit ``None`` disables the budget for the round.
        """
        if subquery_timeout is _UNSET:
            subquery_timeout = self.subquery_timeout
        transport = (
            cluster
            if isinstance(cluster, Transport)
            else InProcessTransport(cluster)
        )
        lanes: dict[str, list[tuple[int, "SubQuery"]]] = {}
        for index, subquery in enumerate(subqueries):
            lanes.setdefault(subquery.site, []).append((index, subquery))
        # Resolve sites up front: an unknown site is a plan error, not a
        # runtime sub-query failure, and raises regardless of policy.
        transport.resolve(list(lanes))

        results: list[Optional[SubQueryExecution]] = [None] * len(subqueries)
        failures: list[SubQueryFailure] = []
        failures_lock = threading.Lock()
        cancel = threading.Event()
        skipped = [0]

        wall_started = self._clock()
        if lanes:
            workers = len(lanes)
            if self.max_workers is not None:
                workers = min(workers, self.max_workers)
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="partix-dispatch"
            ) as pool:
                futures = [
                    pool.submit(
                        self._run_lane,
                        transport,
                        lane,
                        default_collection,
                        results,
                        failures,
                        failures_lock,
                        cancel,
                        skipped,
                        chunk_sink,
                        subquery_timeout,
                    )
                    for lane in lanes.values()
                ]
                for future in futures:
                    future.result()
        wall_seconds = self._clock() - wall_started

        if failures and self.failure_policy == FAIL_FAST:
            raise DispatchError(
                "; ".join(failure.describe() for failure in failures),
                failures=failures,
            )
        notes = [f"degraded: {failure.describe()}" for failure in failures]
        for result in results:
            if result is not None and result.failover_count:
                notes.append(
                    f"failover: fragment {result.fragment!r} answered by"
                    f" {result.site!r} after {result.failover_count}"
                    f" failover(s) (tried {', '.join(result.attempt_sites)})"
                )
        if skipped[0]:
            notes.append(
                f"cancelled: {skipped[0]} sub-quer"
                f"{'y' if skipped[0] == 1 else 'ies'} never dispatched"
            )
        round_ = ParallelRound(
            executions=[result for result in results if result is not None],
            measured_wall_seconds=wall_seconds,
        )
        return DispatchOutcome(
            round=round_,
            executions_by_index=results,
            failures=failures,
            notes=notes,
            cancelled=skipped[0],
        )

    # ------------------------------------------------------------------
    def _run_lane(
        self,
        transport: Transport,
        lane: list[tuple[int, "SubQuery"]],
        default_collection: Optional[str],
        results: list[Optional[SubQueryExecution]],
        failures: list[SubQueryFailure],
        failures_lock: threading.Lock,
        cancel: threading.Event,
        skipped: list[int],
        chunk_sink=None,
        subquery_timeout: Optional[float] = None,
    ) -> None:
        """One site's sub-queries, in plan order, with retry + timeout."""
        for position, (index, subquery) in enumerate(lane):
            if cancel.is_set():
                with failures_lock:
                    skipped[0] += len(lane) - position
                return
            failure = self._run_subquery(
                transport,
                index,
                subquery,
                default_collection,
                results,
                cancel,
                chunk_sink,
                subquery_timeout,
            )
            if failure is not None:
                with failures_lock:
                    failures.append(failure)
                    if self.failure_policy == FAIL_FAST:
                        skipped[0] += len(lane) - position - 1
                if self.failure_policy == FAIL_FAST:
                    cancel.set()
                    return

    def _next_target(
        self, transport: Transport, targets, cursor: int
    ) -> int:
        """Index of the next attempt's target after a failure at
        ``targets[cursor]``.

        Rotation prefers the next *healthy* replica (cyclically, the
        just-failed target considered last); an ejected site is only
        eligible if its readmission probe — the transport's PING — is
        due and succeeds. When every replica is ejected the rotation
        still advances: a possibly-dead replica beats giving up while
        the retry budget lasts.
        """
        if len(targets) == 1:
            return cursor
        for step in range(1, len(targets) + 1):
            candidate = (cursor + step) % len(targets)
            site = targets[candidate].site
            if self.site_health.check(
                site, prober=lambda probed=site: transport.ping(probed)
            ):
                return candidate
        return (cursor + 1) % len(targets)

    def _run_subquery(
        self,
        transport: Transport,
        index: int,
        subquery: "SubQuery",
        default_collection: Optional[str],
        results: list[Optional[SubQueryExecution]],
        cancel: threading.Event,
        chunk_sink=None,
        subquery_timeout: Optional[float] = None,
    ) -> Optional[SubQueryFailure]:
        """One sub-query with its retry/backoff/timeout/failover envelope.

        ``subquery_timeout`` bounds the sub-query's *total* budget:
        every attempt's duration plus the backoff waits between them all
        draw down one shared deadline — each attempt is handed only the
        *remaining* budget, and a retry whose backoff would cross the
        deadline is not taken, so total wall time can never reach the
        old ~(retries+1)× overshoot. On failure the retry rotates to
        the fragment's next healthy replica (see :meth:`_next_target`);
        the failure policy only sees sub-queries whose whole replica
        set was exhausted.
        """
        failure: Optional[SubQueryFailure] = None
        targets = subquery.targets()
        cursor = 0
        failover_count = 0
        attempt_sites: list[str] = []
        budget = subquery_timeout
        deadline = self._clock() + budget if budget is not None else None
        on_chunk = None
        if chunk_sink is not None:
            def on_chunk(data, _index=index):
                chunk_sink.chunk(_index, data)
        for attempt in range(self.retries + 1):
            if cancel.is_set():
                return failure
            target = targets[cursor]
            attempt_sites.append(target.site)
            attempt_timeout = budget
            if deadline is not None:
                attempt_timeout = deadline - self._clock()
                if attempt_timeout <= 0:
                    return SubQueryFailure(
                        site=target.site,
                        fragment=subquery.fragment,
                        query=target.query,
                        attempts=attempt + 1,
                        error=TimeoutError(
                            f"retry budget exhausted after {attempt + 1}"
                            f" attempt(s): the"
                            f" {budget:.3f}s deadline"
                            f" passed before the attempt could start;"
                            f" last error: {failure.error if failure else None}"
                        ),
                        timed_out=True,
                        attempt_sites=list(attempt_sites),
                    )
            attempt_subquery = subquery.retarget(target)
            started = self._clock()
            try:
                if chunk_sink is not None:
                    # Reset the lane at every attempt: a failed attempt's
                    # partial chunks must never survive into the retry.
                    chunk_sink.begin(index)
                execution = transport.execute(
                    attempt_subquery,
                    default_collection=default_collection,
                    timeout=attempt_timeout,
                    on_chunk=on_chunk,
                )
            except Exception as exc:
                self.site_health.record_failure(target.site)
                failure = SubQueryFailure(
                    site=target.site,
                    fragment=subquery.fragment,
                    query=attempt_subquery.query,
                    attempts=attempt + 1,
                    error=exc,
                    timed_out=isinstance(exc, TimeoutError),
                    attempt_sites=list(attempt_sites),
                )
            else:
                now = self._clock()
                if deadline is not None and now > deadline:
                    self.site_health.record_failure(target.site)
                    failure = SubQueryFailure(
                        site=target.site,
                        fragment=subquery.fragment,
                        query=attempt_subquery.query,
                        attempts=attempt + 1,
                        error=TimeoutError(
                            f"exceeded {budget:.3f}s budget"
                            f" (took {now - started:.3f}s)"
                        ),
                        timed_out=True,
                        attempt_sites=list(attempt_sites),
                    )
                else:
                    self.site_health.record_success(target.site)
                    execution.failover_count = failover_count
                    execution.attempt_sites = list(attempt_sites)
                    # Each slot is written by exactly one lane thread.
                    results[index] = execution
                    if chunk_sink is not None:
                        chunk_sink.complete(index)
                    return None
            if attempt < self.retries:
                next_cursor = self._next_target(transport, targets, cursor)
                wait = self._backoff_wait(
                    subquery, attempt, targets[next_cursor].site
                )
                if deadline is not None:
                    remaining = deadline - self._clock()
                    if remaining <= 0 or wait >= remaining:
                        return SubQueryFailure(
                            site=target.site,
                            fragment=subquery.fragment,
                            query=attempt_subquery.query,
                            attempts=attempt + 1,
                            error=TimeoutError(
                                f"retry budget exhausted after {attempt + 1}"
                                f" attempt(s): next backoff ({wait:.3f}s)"
                                f" would overshoot the"
                                f" {budget:.3f}s deadline;"
                                f" last error: {failure.error}"
                            ),
                            timed_out=True,
                            attempt_sites=list(attempt_sites),
                        )
                self._sleep(wait)
                if next_cursor != cursor:
                    failover_count += 1
                    cursor = next_cursor
        return failure
