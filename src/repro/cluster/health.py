"""Shared site-health tracking for dispatch and lowering.

:class:`SiteHealth` is the cluster's memory of which sites are
answering. The dispatcher reports every attempt outcome into it; two
consumers read it back:

* the dispatcher's own retry loop skips ejected sites when rotating a
  failing sub-query across its fragment's replicas;
* the lane scheduler (``repro.plan.lower``) stops routing *new* scans
  to ejected sites, so a crashed site falls out of fresh plans instead
  of burning a retry budget per query.

Ejection is consecutive-failure based: ``ejection_threshold`` failures
in a row (any successful attempt resets the streak) mark the site
ejected. An ejected site is not gone forever — after
``probe_interval_seconds`` a health *probe* (the transport's PING, see
:meth:`check`) is allowed; a successful probe readmits the site, a
failed one re-arms the probe timer. The tracker is thread-safe: lane
threads of one round and concurrent rounds share a single instance.

The clock is injectable so tests can step time deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass
class _SiteState:
    consecutive_failures: int = 0
    ejected: bool = False
    next_probe_at: float = 0.0


class SiteHealth:
    """Consecutive-failure ejection with timed readmission probes."""

    def __init__(
        self,
        ejection_threshold: int = 3,
        probe_interval_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if ejection_threshold < 1:
            raise ValueError("ejection_threshold must be at least 1")
        if probe_interval_seconds < 0:
            raise ValueError("probe_interval_seconds must be non-negative")
        self.ejection_threshold = ejection_threshold
        self.probe_interval_seconds = probe_interval_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._states: dict[str, _SiteState] = {}

    def _state(self, site: str) -> _SiteState:
        state = self._states.get(site)
        if state is None:
            state = self._states[site] = _SiteState()
        return state

    # -- reporting -----------------------------------------------------
    def record_success(self, site: str) -> None:
        """A sub-query (or probe) at ``site`` succeeded: readmit it."""
        with self._lock:
            state = self._state(site)
            state.consecutive_failures = 0
            state.ejected = False
            state.next_probe_at = 0.0

    def record_failure(self, site: str) -> bool:
        """A sub-query attempt at ``site`` failed. Returns True when
        this failure crossed the ejection threshold."""
        with self._lock:
            state = self._state(site)
            state.consecutive_failures += 1
            if (
                not state.ejected
                and state.consecutive_failures >= self.ejection_threshold
            ):
                state.ejected = True
                state.next_probe_at = (
                    self._clock() + self.probe_interval_seconds
                )
                return True
            if state.ejected:
                # A failed probe (or a racing lane) re-arms the timer.
                state.next_probe_at = (
                    self._clock() + self.probe_interval_seconds
                )
            return False

    def readmit(self, site: str) -> None:
        """Explicitly clear ``site``'s ejection (e.g. after a restart)."""
        self.record_success(site)

    # -- queries -------------------------------------------------------
    def is_ejected(self, site: str) -> bool:
        with self._lock:
            state = self._states.get(site)
            return bool(state and state.ejected)

    def probe_due(self, site: str) -> bool:
        """True when ``site`` is ejected and its probe timer expired."""
        with self._lock:
            state = self._states.get(site)
            return bool(
                state
                and state.ejected
                and self._clock() >= state.next_probe_at
            )

    def check(
        self,
        site: str,
        prober: Optional[Callable[[], bool]] = None,
    ) -> bool:
        """Is ``site`` usable as a sub-query target right now?

        A healthy site is always usable. An ejected site is usable only
        if its probe timer expired *and* ``prober`` (typically the
        transport's PING) confirms it answers — a successful probe
        readmits the site, a failed or unavailable probe re-arms the
        timer and keeps the site ejected.
        """
        if not self.is_ejected(site):
            return True
        if not self.probe_due(site):
            return False
        if prober is None:
            return False
        try:
            alive = bool(prober())
        except Exception:
            alive = False
        if alive:
            self.record_success(site)
            return True
        self.record_failure(site)
        return False

    def snapshot(self) -> dict:
        """Per-site health for reporting: {site: {...}} (sorted keys)."""
        with self._lock:
            return {
                site: {
                    "ejected": state.ejected,
                    "consecutive_failures": state.consecutive_failures,
                }
                for site, state in sorted(self._states.items())
            }

    def ejected_sites(self) -> list[str]:
        with self._lock:
            return sorted(
                site
                for site, state in self._states.items()
                if state.ejected
            )
