"""Shared site-health tracking for dispatch and lowering.

:class:`SiteHealth` is the cluster's memory of which sites are
answering. The dispatcher reports every attempt outcome into it; two
consumers read it back:

* the dispatcher's own retry loop skips ejected sites when rotating a
  failing sub-query across its fragment's replicas;
* the lane scheduler (``repro.plan.lower``) stops routing *new* scans
  to ejected sites, so a crashed site falls out of fresh plans instead
  of burning a retry budget per query.

Ejection is consecutive-failure based: ``ejection_threshold`` failures
in a row (any successful attempt resets the streak) mark the site
ejected. An ejected site is not gone forever — after
``probe_interval_seconds`` a health *probe* (the transport's PING, see
:meth:`check`) is allowed; a successful probe readmits the site, a
failed one re-arms the probe timer. The tracker is thread-safe: lane
threads of one round and concurrent rounds share a single instance.

Probes run **off the dispatch hot path**: a due probe is handed to a
background probe worker and the calling lane waits at most
``probe_wait_seconds`` for the verdict (the per-lane probe budget). A
fast prober — an in-process transport, a healthy server — answers well
inside the budget and readmission is effectively synchronous; a *dead*
TCP site whose PING blocks on a connect timeout costs the lane only the
budget, and the probe keeps running in the background so a late success
still readmits the site for subsequent rounds. Before this, a lane
thread pinged the corpse inline and stalled for the full transport
timeout.

The clock is injectable so tests can step time deterministically.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass
class _SiteState:
    consecutive_failures: int = 0
    ejected: bool = False
    next_probe_at: float = 0.0
    #: A probe for this site is in flight on the worker; further lanes
    #: must not enqueue a duplicate (or wait on someone else's probe).
    probing: bool = False


class SiteHealth:
    """Consecutive-failure ejection with timed readmission probes."""

    def __init__(
        self,
        ejection_threshold: int = 3,
        probe_interval_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        probe_wait_seconds: float = 0.25,
    ):
        if ejection_threshold < 1:
            raise ValueError("ejection_threshold must be at least 1")
        if probe_interval_seconds < 0:
            raise ValueError("probe_interval_seconds must be non-negative")
        if probe_wait_seconds < 0:
            raise ValueError("probe_wait_seconds must be non-negative")
        self.ejection_threshold = ejection_threshold
        self.probe_interval_seconds = probe_interval_seconds
        #: Per-lane probe budget: how long :meth:`check` waits for the
        #: background probe verdict before treating the site as still
        #: ejected (real wall time, not the injectable clock — it bounds
        #: an actual thread wait).
        self.probe_wait_seconds = probe_wait_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._states: dict[str, _SiteState] = {}
        self._probe_queue: "queue.Queue" = queue.Queue()
        self._probe_thread: Optional[threading.Thread] = None

    def _state(self, site: str) -> _SiteState:
        state = self._states.get(site)
        if state is None:
            state = self._states[site] = _SiteState()
        return state

    # -- reporting -----------------------------------------------------
    def record_success(self, site: str) -> None:
        """A sub-query (or probe) at ``site`` succeeded: readmit it."""
        with self._lock:
            state = self._state(site)
            state.consecutive_failures = 0
            state.ejected = False
            state.next_probe_at = 0.0

    def record_failure(self, site: str) -> bool:
        """A sub-query attempt at ``site`` failed. Returns True when
        this failure crossed the ejection threshold."""
        with self._lock:
            state = self._state(site)
            state.consecutive_failures += 1
            if (
                not state.ejected
                and state.consecutive_failures >= self.ejection_threshold
            ):
                state.ejected = True
                state.next_probe_at = (
                    self._clock() + self.probe_interval_seconds
                )
                return True
            if state.ejected:
                # A failed probe (or a racing lane) re-arms the timer.
                state.next_probe_at = (
                    self._clock() + self.probe_interval_seconds
                )
            return False

    def readmit(self, site: str) -> None:
        """Explicitly clear ``site``'s ejection (e.g. after a restart)."""
        self.record_success(site)

    # -- queries -------------------------------------------------------
    def is_ejected(self, site: str) -> bool:
        with self._lock:
            state = self._states.get(site)
            return bool(state and state.ejected)

    def probe_due(self, site: str) -> bool:
        """True when ``site`` is ejected and its probe timer expired."""
        with self._lock:
            state = self._states.get(site)
            return bool(
                state
                and state.ejected
                and self._clock() >= state.next_probe_at
            )

    def check(
        self,
        site: str,
        prober: Optional[Callable[[], bool]] = None,
    ) -> bool:
        """Is ``site`` usable as a sub-query target right now?

        A healthy site is always usable. An ejected site is usable only
        if its probe timer expired *and* ``prober`` (typically the
        transport's PING) confirms it answers — a successful probe
        readmits the site, a failed or unavailable probe re-arms the
        timer and keeps the site ejected.

        The probe itself runs on a shared background worker; this call
        waits at most :attr:`probe_wait_seconds` for the verdict. A
        prober that hangs (a dead TCP site's connect timeout) therefore
        cannot stall the calling lane beyond the budget — the probe
        finishes in the background and a late success readmits the site
        for the next round.
        """
        if not self.is_ejected(site):
            return True
        with self._lock:
            state = self._states.get(site)
            if state is None or not state.ejected:
                return True
            if self._clock() < state.next_probe_at:
                return False
            if prober is None:
                return False
            if state.probing:
                # Another lane's probe is already in flight; don't pile a
                # second wait (or a duplicate ping) onto the site.
                return False
            state.probing = True
        done = threading.Event()
        self._ensure_probe_worker()
        self._probe_queue.put((site, prober, done))
        done.wait(self.probe_wait_seconds)
        return not self.is_ejected(site)

    # -- background probing --------------------------------------------
    def _ensure_probe_worker(self) -> None:
        with self._lock:
            if self._probe_thread is not None and self._probe_thread.is_alive():
                return
            self._probe_thread = threading.Thread(
                target=self._probe_loop,
                name="site-health-probe",
                daemon=True,
            )
            self._probe_thread.start()

    def _probe_loop(self) -> None:
        while True:
            site, prober, done = self._probe_queue.get()
            try:
                alive = bool(prober())
            except Exception:
                alive = False
            try:
                if alive:
                    self.record_success(site)
                else:
                    self.record_failure(site)
            finally:
                with self._lock:
                    state = self._states.get(site)
                    if state is not None:
                        state.probing = False
                done.set()

    def snapshot(self) -> dict:
        """Per-site health for reporting: {site: {...}} (sorted keys)."""
        with self._lock:
            return {
                site: {
                    "ejected": state.ejected,
                    "consecutive_failures": state.consecutive_failures,
                }
                for site, state in sorted(self._states.items())
            }

    def ejected_sites(self) -> list[str]:
        with self._lock:
            return sorted(
                site
                for site, state in self._states.items()
                if state.ejected
            )
