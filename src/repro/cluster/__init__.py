"""Simulated cluster: sites, network model, parallel-round accounting,
and the real concurrent dispatcher."""

from repro.cluster.dispatch import (
    DEGRADE,
    FAIL_FAST,
    DispatchOutcome,
    InProcessTransport,
    ParallelDispatcher,
    SubQueryFailure,
    Transport,
)
from repro.cluster.health import SiteHealth
from repro.cluster.network import FREE_NETWORK, GIGABIT_PER_SECOND, NetworkModel
from repro.cluster.site import Cluster, ParallelRound, Site, SubQueryExecution

__all__ = [
    "Cluster",
    "DEGRADE",
    "DispatchOutcome",
    "FAIL_FAST",
    "FREE_NETWORK",
    "GIGABIT_PER_SECOND",
    "InProcessTransport",
    "NetworkModel",
    "SiteHealth",
    "Transport",
    "ParallelDispatcher",
    "ParallelRound",
    "Site",
    "SubQueryExecution",
    "SubQueryFailure",
]
