"""Simulated cluster: sites, network model, parallel-round accounting."""

from repro.cluster.network import FREE_NETWORK, GIGABIT_PER_SECOND, NetworkModel
from repro.cluster.site import Cluster, ParallelRound, Site, SubQueryExecution

__all__ = [
    "Cluster",
    "FREE_NETWORK",
    "GIGABIT_PER_SECOND",
    "NetworkModel",
    "ParallelRound",
    "Site",
    "SubQueryExecution",
]
