"""Union — the reconstruction operator of horizontal fragmentation.

§3.3: "For horizontal fragmentation, the union (∪) operator is used."
Horizontal fragments partition the *documents* of a collection, so union
is document-set union keyed by document identity (origin name).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.datamodel.collection import Collection, RepositoryKind
from repro.datamodel.document import XMLDocument
from repro.errors import CorrectnessViolation


def union_documents(
    groups: Sequence[Iterable[XMLDocument]],
    check_disjoint: bool = True,
) -> list[XMLDocument]:
    """Union the document sets of several horizontal fragments.

    Documents are identified by name (falling back to origin). With
    ``check_disjoint`` a duplicate identity raises
    :class:`CorrectnessViolation` — overlapping horizontal fragments would
    silently duplicate query answers otherwise.

    The result is sorted by identity so reconstruction is deterministic
    regardless of fragment arrival order.
    """
    merged: dict[str, XMLDocument] = {}
    for group in groups:
        for document in group:
            key = document.name or document.origin or f"anon-{id(document)}"
            if key in merged:
                if check_disjoint:
                    raise CorrectnessViolation(
                        "disjointness",
                        f"document {key!r} appears in more than one fragment",
                    )
                continue
            merged[key] = document
    return [merged[key] for key in sorted(merged)]


def union_collections(
    name: str,
    fragments: Sequence[Collection],
    check_disjoint: bool = True,
) -> Collection:
    """Union fragment collections into a new collection called ``name``."""
    documents = union_documents(
        [fragment.documents() for fragment in fragments],
        check_disjoint=check_disjoint,
    )
    first = fragments[0] if fragments else None
    return Collection(
        name,
        documents=[d.clone() for d in documents],
        schema=first.schema if first else None,
        root_type=first.root_type if first else None,
        kind=first.kind if first else RepositoryKind.MULTIPLE_DOCUMENTS,
    )
