"""ID-join — the reconstruction operator of vertical fragmentation.

§3.3: "for vertical fragmentation, the join (⋈) operator is used. We keep
an ID in each vertical fragment for reconstruction purposes."

Vertical fragments of one source document are projected subtrees carrying
``pxid``/``pxparent`` annotations (see :mod:`repro.algebra.annotations`).
Reconstruction grafts every annotated subtree back under the node whose
``pxid`` equals its ``pxparent``, restoring document order by comparing
the (pre-order) ids of annotated siblings.

Two situations arise for the document root:

* some fragment contains the original root (a *remainder* fragment such as
  ``F4items := π/Store, {/Store/Items}``) — it becomes the skeleton;
* no fragment contains the root (the paper's XBench design
  ``π/article/prolog ⋈ π/article/body ⋈ π/article/epilog`` covers only the
  root's children) — the root element is synthesized from the collection's
  declared root label.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.algebra.annotations import (
    PXID,
    PXPARENT,
    read_annotation,
    strip_annotations,
)
from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import NodeKind, XMLNode
from repro.errors import FragmentationError


def reconstruct_documents(
    fragments: Iterable[XMLDocument],
    root_label: Optional[str] = None,
    strip: bool = True,
) -> list[XMLDocument]:
    """Join vertical fragment documents back into their source documents.

    ``fragments`` may mix parts of several source documents; parts are
    grouped by their ``origin``. ``root_label`` names the element to
    synthesize when no part contains the source root. Results are sorted
    by origin.
    """
    by_origin: dict[str, list[XMLDocument]] = {}
    for part in fragments:
        key = part.origin or part.name or ""
        by_origin.setdefault(key, []).append(part)
    return [
        reconstruct_one(parts, root_label=root_label, origin=origin, strip=strip)
        for origin, parts in sorted(by_origin.items())
    ]


def reconstruct_one(
    parts: list[XMLDocument],
    root_label: Optional[str] = None,
    origin: Optional[str] = None,
    strip: bool = True,
) -> XMLDocument:
    """Join the vertical parts of a single source document."""
    if not parts:
        raise FragmentationError("cannot reconstruct a document from no parts")
    skeletons = [p for p in parts if read_annotation(p.root, PXPARENT) is None]
    grafts = [p for p in parts if read_annotation(p.root, PXPARENT) is not None]
    if len(skeletons) > 1:
        # FragMode2 hybrid fragments ship the whole root→region spine, so
        # several parts legitimately claim the root — as long as they are
        # clones of the *same* original root (equal pxid), they merge.
        root_ids = {read_annotation(p.root, PXID) for p in skeletons}
        if len(root_ids) != 1 or None in root_ids:
            raise FragmentationError(
                f"{len(skeletons)} fragments claim the document root of"
                f" {origin!r}; vertical fragments must be disjoint"
            )
    if skeletons:
        skeleton = skeletons[0].root.clone(deep=True)
    else:
        if root_label is None:
            raise FragmentationError(
                "no fragment contains the document root and no root label"
                " was provided for synthesis"
            )
        skeleton = XMLNode.element(root_label)
        # The synthesized root adopts the common parent id of the grafts.
        parent_ids = {read_annotation(p.root, PXPARENT) for p in grafts}
        if len(parent_ids) > 1:
            # Nested prunes exist; the root is the smallest parent id.
            root_id = min(pid for pid in parent_ids if pid is not None)
        elif parent_ids:
            root_id = next(iter(parent_ids))
        else:
            root_id = 0
        from repro.algebra.annotations import annotate

        annotate(skeleton, PXID, int(root_id or 0))

    targets = _index_targets(skeleton)
    for extra in skeletons[1:]:
        _merge_spine(targets, extra.root.clone(deep=True))
    # Outer subtrees first so nested grafts find their (just-grafted) parents.
    for part in sorted(grafts, key=_graft_sort_key):
        part_root = part.root.clone(deep=True)
        part_id = read_annotation(part_root, PXID)
        parent_id = read_annotation(part_root, PXPARENT)
        assert parent_id is not None
        stub = targets.get(part_id) if part_id is not None else None
        if stub is not None and _is_stub(stub):
            # A stub-keeping prune left an empty placeholder for exactly
            # this node: fill it in place rather than grafting a duplicate.
            _replace_node(stub, part_root)
        else:
            target = targets.get(parent_id)
            if target is None:
                raise FragmentationError(
                    f"fragment of {origin!r} grafts under node id"
                    f" {parent_id}, which no other fragment provides"
                    " (completeness violation)"
                )
            _insert_in_order(target, part_root)
        for node_id, node in _index_targets(part_root).items():
            targets[node_id] = node
    if strip:
        skeleton = strip_annotations(skeleton)
    return XMLDocument(skeleton, name=origin, assign_ids=True, origin=origin)


def _merge_spine(targets: dict[int, XMLNode], root: XMLNode) -> None:
    """Fold an extra root-claiming part into the already-indexed skeleton.

    Spine nodes (same ``pxid`` as an indexed node) are duplicates of what
    the skeleton — or a previously merged part — already provides, so
    only their children are descended into; anything not yet indexed is a
    genuine payload subtree and is grafted wholesale at its pre-order
    position.
    """
    existing = targets[read_annotation(root, PXID)]
    for child in [c for c in root.children if c.kind is NodeKind.ELEMENT]:
        _merge_child(targets, existing, child)


def _merge_child(
    targets: dict[int, XMLNode], parent_target: XMLNode, node: XMLNode
) -> None:
    node_id = read_annotation(node, PXID)
    if node_id is None:
        # Spine duplicates and unit grafts are always id-annotated; an
        # unannotated element here means two fragments projected the same
        # region — a real disjointness violation, not FragMode2 packaging.
        raise FragmentationError(
            "overlapping root-claiming fragments: duplicated spine carries"
            f" an element <{node.label}> without a reconstruction id"
        )
    if node_id in targets:
        target = targets[node_id]
        for child in [c for c in node.children if c.kind is NodeKind.ELEMENT]:
            _merge_child(targets, target, child)
        return
    _insert_in_order(parent_target, node)
    for merged_id, merged in _index_targets(node).items():
        targets.setdefault(merged_id, merged)


def _is_stub(node: XMLNode) -> bool:
    """An empty placeholder left by a stub-keeping prune."""
    return node.kind is NodeKind.ELEMENT and all(
        child.kind is NodeKind.ATTRIBUTE for child in node.children
    )


def _replace_node(old: XMLNode, new: XMLNode) -> None:
    """Swap ``old`` for ``new`` in ``old``'s parent, keeping its position."""
    parent = old.parent
    if parent is None:
        raise FragmentationError("cannot replace a detached stub")
    index = parent.children.index(old)
    new.parent = parent
    parent.children[index] = new
    old.parent = None


def _graft_sort_key(part: XMLDocument) -> int:
    node_id = read_annotation(part.root, PXID)
    return node_id if node_id is not None else 1 << 60


def _index_targets(root: XMLNode) -> dict[int, XMLNode]:
    """Map pxid → node over every annotated node of a subtree."""
    targets: dict[int, XMLNode] = {}
    for node in root.descendants_or_self():
        if node.kind is not NodeKind.ELEMENT:
            continue
        node_id = read_annotation(node, PXID)
        if node_id is not None:
            targets[node_id] = node
    return targets


def _insert_in_order(parent: XMLNode, child: XMLNode) -> None:
    """Insert ``child`` among ``parent``'s children by pre-order id.

    Pre-order ids grow in document order, so a grafted subtree belongs
    before the first element sibling with a larger ``pxid``. Siblings
    without an id (not cut-point-annotated) sort before — they were left
    in place by the projection, and cut-point annotation marks every
    retained sibling, so unannotated siblings only occur in synthesized
    roots where append order (graft id order) is already correct.
    """
    child_id = read_annotation(child, PXID)
    child.parent = parent
    if child_id is None:
        parent.children.append(child)
        return
    for index, sibling in enumerate(parent.children):
        if sibling.kind is not NodeKind.ELEMENT:
            continue
        sibling_id = read_annotation(sibling, PXID)
        if sibling_id is not None and sibling_id > child_id:
            parent.children.insert(index, child)
            return
    parent.children.append(child)
