"""TLC-style document algebra: σ, π, ∪, ⋈ and composition (paper §3.2-3.3)."""

from repro.algebra.annotations import (
    ANNOTATION_NAMES,
    PXID,
    PXORIGIN,
    PXPARENT,
    annotate,
    is_annotation,
    read_annotation,
    read_origin,
    strip_annotations,
)
from repro.algebra.join import reconstruct_documents, reconstruct_one
from repro.algebra.operators import (
    Composition,
    DocumentOperator,
    Projection,
    Selection,
    compose,
    projection,
    selection,
)
from repro.algebra.union import union_collections, union_documents

__all__ = [
    "ANNOTATION_NAMES",
    "Composition",
    "DocumentOperator",
    "PXID",
    "PXORIGIN",
    "PXPARENT",
    "Projection",
    "Selection",
    "annotate",
    "compose",
    "is_annotation",
    "projection",
    "read_annotation",
    "read_origin",
    "reconstruct_documents",
    "reconstruct_one",
    "selection",
    "strip_annotations",
    "union_collections",
    "union_documents",
]
