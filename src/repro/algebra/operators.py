"""Document-level operators of the fragmentation algebra.

Following TLC/TAX (the paper grounds its fragment semantics in the TLC
algebra, §3.2), operators act on *collections of documents*: applying an
operator to each document of a collection yields the fragment's instance
set (Definition 1: "Instances of a fragment F are obtained by applying γ
to each document in C").

* :class:`Selection` (σμ) keeps a document iff it satisfies the predicate
  (Definition 2 — horizontal fragmentation).
* :class:`Projection` (π_{P,Γ}) extracts the subtree rooted at the node
  selected by ``P``, pruning any descendant selected by an expression of
  the prune criterion ``Γ`` (Definition 3 — vertical fragmentation).
* :class:`Composition` (π • σ / σ • π) chains the two (Definition 4 —
  hybrid fragmentation).

All operators return a *list* of result documents per input document: an
empty list when the document contributes nothing, normally one document,
and — only for projections explicitly allowing it (``allow_multiple``,
used by hybrid fragmentation's item-splitting FragMode1) — several.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Union

from repro.algebra.annotations import PXID, PXPARENT, annotate
from repro.datamodel.collection import Collection
from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import NodeKind, XMLNode
from repro.errors import FragmentationError
from repro.paths.ast import PathExpr
from repro.paths.evaluator import evaluate_path
from repro.paths.parser import parse_path
from repro.paths.predicates import Predicate


class DocumentOperator(abc.ABC):
    """An operator γ applicable document-by-document to a collection."""

    @abc.abstractmethod
    def apply(self, document: XMLDocument) -> list[XMLDocument]:
        """Result documents contributed by ``document``."""

    def apply_collection(self, collection: Collection) -> list[XMLDocument]:
        """Apply to every document of ``collection``, concatenating results."""
        results: list[XMLDocument] = []
        for document in collection:
            results.extend(self.apply(document))
        return results

    @abc.abstractmethod
    def __str__(self) -> str:
        ...


class Selection(DocumentOperator):
    """σμ — keep the documents satisfying the predicate μ."""

    def __init__(self, predicate: Predicate):
        self.predicate = predicate

    def apply(self, document: XMLDocument) -> list[XMLDocument]:
        if self.predicate.evaluate(document):
            return [document.clone()]
        return []

    def __str__(self) -> str:
        return f"σ[{self.predicate}]"


class Projection(DocumentOperator):
    """π_{P,Γ} — project the subtrees selected by P, pruning Γ.

    Parameters
    ----------
    path:
        The projection path ``P``. Definition 3 requires that ``P`` cannot
        select more than one node per document (else the fragment would not
        be a well-formed document), unless a positional step pins one
        occurrence. The check is dynamic here; the fragmentation layer adds
        the static schema check.
    prune:
        The prune criterion ``Γ``: path expressions contained in ``P``
        (i.e. with ``P`` as a prefix) whose selected subtrees are excluded.
    allow_multiple:
        Permit ``P`` to select several nodes, yielding one result document
        per node. This is *not* a valid vertical fragment by Definition 3;
        it exists for hybrid fragmentation (σ then per-item documents,
        FragMode1) where the subsequent horizontal step regroups items.
    annotate_ids:
        Write ``pxid``/``pxparent`` reconstruction annotations (on the
        projected root, and on cut points that lost pruned children).
    stub_prunes:
        Instead of removing a pruned element entirely, keep an *empty
        stub* carrying the node's ``pxid``. Needed by designs where the
        complementary fragments hold only the pruned node's children
        (e.g. the paper's StoreHyb remainder ``π/Store,{/Store/Items}``
        with Item units split off): the stub is the graft target. The
        join replaces a stub when a fragment provides the full node.
    """

    def __init__(
        self,
        path: Union[PathExpr, str],
        prune: Sequence[Union[PathExpr, str]] = (),
        allow_multiple: bool = False,
        annotate_ids: bool = True,
        stub_prunes: bool = False,
    ):
        self.path = parse_path(path) if isinstance(path, str) else path
        self.prune = tuple(
            parse_path(p) if isinstance(p, str) else p for p in prune
        )
        for expr in self.prune:
            if not self.path.is_prefix_of(expr):
                raise FragmentationError(
                    f"prune expression {expr} is not contained in projection"
                    f" path {self.path}"
                )
        self.allow_multiple = allow_multiple
        self.annotate_ids = annotate_ids
        self.stub_prunes = stub_prunes

    def apply(self, document: XMLDocument) -> list[XMLDocument]:
        roots = evaluate_path(self.path, document)
        if not roots:
            return []
        if len(roots) > 1 and not self.allow_multiple:
            raise FragmentationError(
                f"projection path {self.path} selected {len(roots)} nodes in"
                f" document {document.name!r}; vertical fragments require at"
                " most one (Definition 3)"
            )
        pruned_ids = self._pruned_node_ids(document)
        results = []
        for index, root in enumerate(roots):
            projected = self._project_subtree(root, pruned_ids)
            name = document.name
            if name is not None and len(roots) > 1:
                name = f"{name}#{index}"
            results.append(
                XMLDocument(
                    projected,
                    name=name,
                    assign_ids=False,
                    origin=document.origin,
                )
            )
        return results

    def _pruned_node_ids(self, document: XMLDocument) -> set[int]:
        ids: set[int] = set()
        for expr in self.prune:
            for node in evaluate_path(expr, document):
                ids.add(node.node_id)
        return ids

    def _project_subtree(self, root: XMLNode, pruned_ids: set[int]) -> XMLNode:
        if pruned_ids and self.stub_prunes:
            copy = self._clone_with_stubs(root, pruned_ids)
        elif pruned_ids:
            copy = root.clone_pruned(lambda n: n.node_id in pruned_ids)
        else:
            copy = root.clone(deep=True)
        if self.annotate_ids:
            annotate(copy, PXID, root.node_id)
            if root.parent is not None:
                annotate(copy, PXPARENT, root.parent.node_id)
            if pruned_ids:
                self._annotate_cut_points(root, copy, pruned_ids)
        return copy

    def _clone_with_stubs(self, node: XMLNode, pruned_ids: set[int]) -> XMLNode:
        copy = XMLNode(node.kind, label=node.label, value=node.value)
        copy.node_id = node.node_id
        for child in node.children:
            if child.node_id in pruned_ids:
                if child.kind is NodeKind.ELEMENT:
                    stub = XMLNode.element(child.label or "")
                    stub.node_id = child.node_id
                    annotate(stub, PXID, child.node_id)
                    copy.append(stub)
                # pruned attributes/text vanish outright
            else:
                copy.append(self._clone_with_stubs(child, pruned_ids))
        return copy

    def _annotate_cut_points(
        self, original: XMLNode, copy: XMLNode, pruned_ids: set[int]
    ) -> None:
        # Parents (in the original) of pruned subtrees are cut points; mark
        # their copies with pxid so grafting can find them after a
        # serialization round-trip. Their retained element children are
        # annotated too: the join orders grafted subtrees among siblings by
        # these pre-order ids.
        cut_ids = set()
        for node in original.descendants_or_self():
            if node.node_id in pruned_ids and node.parent is not None:
                cut_ids.add(node.parent.node_id)
        if not cut_ids:
            return
        for node in copy.descendants_or_self():
            if node.node_id in cut_ids:
                annotate(node, PXID, node.node_id)
                for child in node.element_children():
                    annotate(child, PXID, child.node_id)

    def __str__(self) -> str:
        gamma = "{" + ", ".join(str(p) for p in self.prune) + "}"
        return f"π[{self.path}, {gamma}]"


class Composition(DocumentOperator):
    """Chained application ``second • first`` (hybrid fragments, Def. 4).

    ``first`` runs before ``second``; the paper writes ``π • σ`` and notes
    "the order of the application of the operations depends on the
    fragmentation design".
    """

    def __init__(self, first: DocumentOperator, second: DocumentOperator):
        self.first = first
        self.second = second

    def apply(self, document: XMLDocument) -> list[XMLDocument]:
        results: list[XMLDocument] = []
        for intermediate in self.first.apply(document):
            results.extend(self.second.apply(intermediate))
        return results

    def __str__(self) -> str:
        return f"{self.second} • {self.first}"


def selection(predicate: Predicate) -> Selection:
    """Shorthand constructor for σμ."""
    return Selection(predicate)


def projection(
    path: Union[PathExpr, str],
    prune: Sequence[Union[PathExpr, str]] = (),
    allow_multiple: bool = False,
) -> Projection:
    """Shorthand constructor for π_{P,Γ}."""
    return Projection(path, prune=prune, allow_multiple=allow_multiple)


def compose(first: DocumentOperator, second: DocumentOperator) -> Composition:
    """Apply ``first`` then ``second``."""
    return Composition(first, second)
