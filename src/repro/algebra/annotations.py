"""Reconstruction annotations carried by fragment documents.

The paper keeps "an ID in each vertical fragment for reconstruction
purposes" (§3.3). We realise these IDs as two reserved attributes written
onto fragment documents, so they survive serialization in any
XQuery-enabled backend:

* ``pxid`` — on the root of a projected subtree and on every *cut point*
  (a node that lost a pruned child): the node's id in the source document.
* ``pxparent`` — on the root of a projected subtree: the id of its parent
  in the source document, i.e. where the subtree grafts back.

Both are metadata: structural document equality in this library ignores
them (see :func:`strip_annotations`), and correctness checks exclude them
from the "data item" universe.
"""

from __future__ import annotations

from repro.datamodel.tree import NodeKind, XMLNode

PXID = "pxid"
PXPARENT = "pxparent"
PXORIGIN = "pxorigin"
ANNOTATION_NAMES = frozenset({PXID, PXPARENT, PXORIGIN})


def annotate(node: XMLNode, name: str, value) -> None:
    """Set annotation ``name`` on ``node``, replacing an existing one."""
    for child in node.children:
        if child.kind is NodeKind.ATTRIBUTE and child.label == name:
            child.value = str(value)
            return
    # Attributes conventionally precede other children.
    attr = XMLNode.attribute(name, str(value))
    attr.parent = node
    node.children.insert(0, attr)


def read_annotation(node: XMLNode, name: str) -> int | None:
    """Read an integer annotation from ``node`` (None when absent)."""
    value = node.get_attribute(name)
    return int(value) if value is not None else None


def read_origin(node: XMLNode) -> str | None:
    """Read the ``pxorigin`` annotation (source document name)."""
    return node.get_attribute(PXORIGIN)


def strip_annotations(node: XMLNode) -> XMLNode:
    """Deep copy of ``node`` with every ``pxid``/``pxparent`` removed."""
    return node.clone_pruned(
        lambda child: child.kind is NodeKind.ATTRIBUTE
        and child.label in ANNOTATION_NAMES
    )


def is_annotation(node: XMLNode) -> bool:
    """True for a pxid/pxparent attribute node."""
    return node.kind is NodeKind.ATTRIBUTE and node.label in ANNOTATION_NAMES
