"""Exception hierarchy for the PartiX reproduction.

Every error raised by this library derives from :class:`PartixError` so
applications can catch one base class. Sub-hierarchies mirror the layers of
the system: text parsing, schema validation, path/XQuery compilation and
evaluation, storage, fragmentation, and distributed execution.
"""

from __future__ import annotations


class PartixError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class XMLSyntaxError(PartixError):
    """Raised when XML text is not well-formed.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SchemaError(PartixError):
    """Raised for malformed schema definitions (unknown types, bad cardinalities)."""


class ValidationError(PartixError):
    """Raised when a document does not satisfy the type it is checked against."""


class PathSyntaxError(PartixError):
    """Raised when a path expression cannot be parsed."""


class PredicateError(PartixError):
    """Raised when a simple predicate is malformed or cannot be evaluated."""


class XQuerySyntaxError(PartixError):
    """Raised when an XQuery expression cannot be parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class XQueryTypeError(PartixError):
    """Raised for dynamic type errors during XQuery evaluation."""


class XQueryEvaluationError(PartixError):
    """Raised for other dynamic errors during XQuery evaluation."""


class StorageError(PartixError):
    """Raised by the storage engine (missing collection/document, I/O)."""


class CollectionNotFoundError(StorageError):
    """Raised when a named collection does not exist in a database."""


class DocumentNotFoundError(StorageError):
    """Raised when a document name does not exist in a collection."""


class FragmentationError(PartixError):
    """Raised for invalid fragment definitions (Definition 1-4 violations)."""


class CorrectnessViolation(FragmentationError):
    """Raised when a fragmentation schema fails a correctness rule.

    ``rule`` is one of ``"completeness"``, ``"disjointness"`` or
    ``"reconstruction"`` and ``details`` carries a human-readable account of
    the violating data items.
    """

    def __init__(self, rule: str, details: str):
        super().__init__(f"fragmentation violates {rule}: {details}")
        self.rule = rule
        self.details = details


class CatalogError(PartixError):
    """Raised by the schema/distribution catalog services."""


class CatalogContention(CatalogError):
    """Planning kept losing races against concurrent catalog replaces.

    ``Partix._plan_for`` retries a bounded number of times when the
    catalog version changes mid-decompose (a concurrent republish or
    rebalance swapping the design). Exhausting the retry budget raises
    this instead of silently planning against a possibly-mixed design —
    callers (the coordinator surfaces it as a QUERY_ERROR) may simply
    retry the query once the replace storm settles.
    """


class RebalanceError(PartixError):
    """Raised by the online rebalancer (``repro.rebalance``) when a
    migration cannot be performed: unknown fragment, a fragment that is
    not splittable, a target site already holding the data, or a primary
    whose driver exposes no local engine to read documents from.

    A raised migration never half-applies: the catalog is only swapped
    after every new fragment is fully stored, so the old design stays
    routable."""


class DecompositionError(PartixError):
    """Raised when a query cannot be decomposed over a fragmentation schema."""


class ClusterError(PartixError):
    """Raised by the simulated cluster (unknown site, no driver, ...)."""


class ProtocolError(PartixError):
    """Raised for malformed, truncated or oversized ``repro.net`` frames,
    and for protocol-version handshake refusals."""


class TransportError(ClusterError):
    """Raised when talking to a remote site server fails at the transport
    level (connect refused, connection reset, read timeout, bad frame).

    Transport errors are *retryable*: the dispatcher treats them like any
    transient sub-query failure.
    """


class TransportTimeout(TransportError, TimeoutError):
    """A remote site server did not answer within the read timeout."""


class RemoteExecutionError(ClusterError):
    """A site server reported an error whose class could not be mapped
    back to a local exception type (see ``repro.net.protocol``)."""


class CoordinatorError(PartixError):
    """Raised by the multi-tenant coordinator service (``repro.coordinate``)."""


class AdmissionRejected(CoordinatorError):
    """The coordinator shed a query: its bounded admission queue was full.

    This is a *typed* load-shedding signal — clients distinguish it from
    execution failures and may retry later with backoff. It crosses the
    wire as a QUERY_ERROR frame and maps back to this same class.
    """


class QueryDeadlineExceeded(CoordinatorError, TimeoutError):
    """A coordinated query ran out of its per-query deadline.

    The deadline covers the whole query — admission wait, planning and
    dispatch all draw down one budget (the remainder is handed to the
    dispatcher as the round's sub-query timeout).
    """


class DispatchError(ClusterError):
    """Raised when concurrent sub-query dispatch fails under the
    ``fail_fast`` policy.

    ``failures`` lists each exhausted sub-query as a
    :class:`repro.cluster.dispatch.SubQueryFailure`.
    """

    def __init__(self, message: str, failures: list | None = None):
        super().__init__(message)
        self.failures = failures or []
