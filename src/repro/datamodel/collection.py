"""Collections of XML documents.

The paper (§3.1) defines a collection ``C`` as a set of data trees, and a
*homogeneous* collection as one whose instances all satisfy the same XML
type: ``C := ⟨S, τroot⟩`` where ``τroot`` is a type of schema ``S``.

Two repository shapes are distinguished (after XBench):

* ``MD`` — *multiple documents*: many (typically small) documents, e.g.
  ``Citems := ⟨Svirtual_store, /Store/Items/Item⟩``.
* ``SD`` — *single document*: one large document holding everything, e.g.
  ``Cstore := ⟨Svirtual_store, /Store⟩``.

The distinction matters for fragmentation: horizontal fragmentation is
defined over documents, hence SD repositories admit only hybrid
fragmentation (§3.2).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.datamodel.document import XMLDocument

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xschema.schema import Schema


class RepositoryKind(enum.Enum):
    """Shape of an XML repository (§3.1, after XBench)."""

    SINGLE_DOCUMENT = "SD"
    MULTIPLE_DOCUMENTS = "MD"


class Collection:
    """A (possibly homogeneous) collection of XML documents.

    Parameters
    ----------
    name:
        Collection name; the identity used in catalogs and queries
        (``collection("name")``).
    documents:
        Initial documents.
    schema / root_type:
        When both are given the collection is *declared homogeneous* with
        respect to ``⟨schema, root_type⟩``; :meth:`is_homogeneous` then
        validates every document against the type.
    kind:
        SD or MD. SD collections hold at most one document.
    """

    def __init__(
        self,
        name: str,
        documents: Iterable[XMLDocument] = (),
        schema: Optional["Schema"] = None,
        root_type: Optional[str] = None,
        kind: RepositoryKind = RepositoryKind.MULTIPLE_DOCUMENTS,
    ):
        self.name = name
        self.schema = schema
        self.root_type = root_type
        self.kind = kind
        self._documents: dict[str, XMLDocument] = {}
        self._counter = 0
        for document in documents:
            self.add(document)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add(self, document: XMLDocument) -> XMLDocument:
        """Add a document, naming it if anonymous; returns it."""
        if self.kind is RepositoryKind.SINGLE_DOCUMENT and len(self._documents) >= 1:
            raise ValueError(
                f"SD collection {self.name!r} already holds its single document"
            )
        if document.name is None:
            document.name = f"{self.name}-{self._counter:06d}.xml"
            if document.origin is None:
                document.origin = document.name
        self._counter += 1
        if document.name in self._documents:
            raise ValueError(f"duplicate document name {document.name!r}")
        self._documents[document.name] = document
        return document

    def remove(self, name: str) -> XMLDocument:
        """Remove and return the document called ``name``."""
        return self._documents.pop(name)

    def get(self, name: str) -> Optional[XMLDocument]:
        """Document called ``name``, or None."""
        return self._documents.get(name)

    def documents(self) -> list[XMLDocument]:
        """All documents, in insertion order."""
        return list(self._documents.values())

    def names(self) -> list[str]:
        return list(self._documents.keys())

    def __iter__(self) -> Iterator[XMLDocument]:
        return iter(self._documents.values())

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, name: str) -> bool:
        return name in self._documents

    # ------------------------------------------------------------------
    # Homogeneity (§3.1)
    # ------------------------------------------------------------------
    @property
    def is_declared_homogeneous(self) -> bool:
        """True when the collection was declared as ⟨S, τroot⟩."""
        return self.schema is not None and self.root_type is not None

    def is_homogeneous(self) -> bool:
        """Validate every document against the declared root type.

        An undeclared collection is homogeneous iff all roots share a label
        (weak structural homogeneity) — callers that need the strong notion
        should declare a schema.
        """
        docs = self.documents()
        if not docs:
            return True
        if self.is_declared_homogeneous:
            assert self.schema is not None and self.root_type is not None
            return all(
                self.schema.satisfies(doc.root, self.root_type) for doc in docs
            )
        first_label = docs[0].root.label
        return all(doc.root.label == first_label for doc in docs)

    # ------------------------------------------------------------------
    def total_nodes(self) -> int:
        """Total node count across all documents."""
        return sum(doc.node_count() for doc in self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Collection(name={self.name!r}, kind={self.kind.value},"
            f" documents={len(self)})"
        )
