"""XML documents.

A document wraps a data tree root with a name (its identity inside a
collection) and assigns document-order node ids on construction. Documents
are the unit of horizontal fragmentation (§3.3: "In the horizontal
fragmentation, the data item consists of an XML document, while in the
vertical fragmentation, it is a node").
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.datamodel.tree import NodeKind, XMLNode, assign_node_ids


class XMLDocument:
    """A well-formed XML document: a data tree with a single root element.

    Parameters
    ----------
    root:
        The root element of the data tree.
    name:
        Document name inside its collection. Unnamed documents get a
        name assigned at storage time.
    assign_ids:
        When true (default) assign fresh document-order node ids. Fragments
        pass ``False`` to preserve the ids of the source document, which are
        the vertical reconstruction keys.
    """

    __slots__ = ("root", "name", "origin")

    def __init__(
        self,
        root: XMLNode,
        name: Optional[str] = None,
        assign_ids: bool = True,
        origin: Optional[str] = None,
    ):
        if root.kind is not NodeKind.ELEMENT:
            raise ValueError("document root must be an element")
        if root.parent is not None:
            raise ValueError("document root must not have a parent")
        self.root = root
        self.name = name
        # Name of the source document when this one is a fragment of it.
        self.origin = origin if origin is not None else name
        if assign_ids:
            assign_node_ids(root)

    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[XMLNode]:
        """All nodes in document order."""
        return self.root.descendants_or_self()

    def node_count(self) -> int:
        """Number of nodes in the document."""
        return self.root.subtree_size()

    def find_by_id(self, node_id: int) -> Optional[XMLNode]:
        """Locate the node carrying ``node_id`` (linear scan)."""
        for node in self.nodes():
            if node.node_id == node_id:
                return node
        return None

    def tree_equal(self, other: "XMLDocument", compare_ids: bool = False) -> bool:
        """Structural equality of the two document trees."""
        return self.root.tree_equal(other.root, compare_ids=compare_ids)

    def clone(self, name: Optional[str] = None) -> "XMLDocument":
        """Deep copy; node ids are preserved (fragment-friendly)."""
        return XMLDocument(
            self.root.clone(deep=True),
            name=name if name is not None else self.name,
            assign_ids=False,
            origin=self.origin,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XMLDocument(name={self.name!r}, root={self.root.label!r})"
