"""XML data trees.

Implements the data model of the paper (Section 3.1): an XML data tree is
``Δ := ⟨t, ℓ, Ψ⟩`` where ``t`` is a finite ordered tree, ``ℓ`` labels nodes
with element names (the set ``L``) or attribute names (the set ``A``), and
``Ψ`` maps leaf nodes to data values (the set ``D``).

Concretely we use three node kinds:

* ``ELEMENT`` — labelled with a name from ``L``; ordered children.
* ``ATTRIBUTE`` — labelled with a name from ``A``; holds exactly one value
  (the paper models this as a single child with label in ``D``).
* ``TEXT`` — a leaf carrying a value from ``D`` (``Ψ`` applies).

Following the paper we assume no mixed content: if an element has a text
child it has no element children. The builder helpers enforce this; the
parser normalizes whitespace-only text away from element content.

Every node carries a stable ``node_id`` assigned in document order when the
node is attached to a :class:`~repro.datamodel.document.XMLDocument`. Node
ids are the reconstruction keys for vertical fragmentation: the paper keeps
"an ID in each vertical fragment for reconstruction purposes" (§3.3), and we
keep exactly this id.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Iterable, Iterator, Optional


class NodeKind(enum.Enum):
    """Kind of a node in a data tree."""

    ELEMENT = "element"
    ATTRIBUTE = "attribute"
    TEXT = "text"


_unassigned_ids = itertools.count(-1, -1)


class XMLNode:
    """A node of an XML data tree.

    Parameters
    ----------
    kind:
        The :class:`NodeKind` of this node.
    label:
        Element or attribute name (``None`` for text nodes).
    value:
        Data value for text nodes and attributes (``None`` for elements).
    """

    __slots__ = (
        "kind",
        "label",
        "value",
        "children",
        "parent",
        "node_id",
        "_content_kind",
    )

    def __init__(
        self,
        kind: NodeKind,
        label: Optional[str] = None,
        value: Optional[str] = None,
    ):
        if kind is NodeKind.TEXT and label is not None:
            raise ValueError("text nodes carry no label")
        if kind is not NodeKind.TEXT and label is None:
            raise ValueError(f"{kind.value} nodes require a label")
        self.kind = kind
        self.label = label
        self.value = value
        self.children: list[XMLNode] = []
        self.parent: Optional[XMLNode] = None
        # Negative ids mean "not yet attached to a document"; attachment
        # assigns non-negative document-order ids.
        self.node_id: int = next(_unassigned_ids)
        # O(1) mixed-content tracking: None / TEXT / ELEMENT.
        self._content_kind: Optional[NodeKind] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def element(label: str) -> "XMLNode":
        """Create an element node with no children."""
        return XMLNode(NodeKind.ELEMENT, label=label)

    @staticmethod
    def attribute(label: str, value: str) -> "XMLNode":
        """Create an attribute node holding ``value``."""
        return XMLNode(NodeKind.ATTRIBUTE, label=label, value=str(value))

    @staticmethod
    def text(value: str) -> "XMLNode":
        """Create a text (data) node."""
        return XMLNode(NodeKind.TEXT, value=str(value))

    def append(self, child: "XMLNode") -> "XMLNode":
        """Attach ``child`` as the last child of this node and return it.

        Enforces the structural rules of §3.1: attributes and text nodes
        are leaves (no children below text; attributes hold their value
        directly), and element content is not mixed.
        """
        if self.kind is NodeKind.TEXT:
            raise ValueError("text nodes cannot have children")
        if self.kind is NodeKind.ATTRIBUTE:
            raise ValueError("attribute nodes hold their value directly")
        if child.kind is NodeKind.TEXT:
            if self._content_kind is NodeKind.ELEMENT:
                raise ValueError(
                    "mixed content is not supported (text beside elements)"
                )
            self._content_kind = NodeKind.TEXT
        elif child.kind is NodeKind.ELEMENT:
            if self._content_kind is NodeKind.TEXT:
                raise ValueError(
                    "mixed content is not supported (element beside text)"
                )
            self._content_kind = NodeKind.ELEMENT
        child.parent = self
        self.children.append(child)
        return child

    def extend(self, children: Iterable["XMLNode"]) -> "XMLNode":
        """Append every node in ``children``; returns self for chaining."""
        for child in children:
            self.append(child)
        return self

    def remove(self, child: "XMLNode") -> None:
        """Detach ``child`` from this node."""
        self.children.remove(child)
        child.parent = None
        if not any(
            c.kind in (NodeKind.TEXT, NodeKind.ELEMENT) for c in self.children
        ):
            self._content_kind = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_element(self) -> bool:
        return self.kind is NodeKind.ELEMENT

    @property
    def is_attribute(self) -> bool:
        return self.kind is NodeKind.ATTRIBUTE

    @property
    def is_text(self) -> bool:
        return self.kind is NodeKind.TEXT

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children (text/attributes always are)."""
        return not self.children

    def attributes(self) -> list["XMLNode"]:
        """Attribute children of an element, in document order."""
        return [c for c in self.children if c.kind is NodeKind.ATTRIBUTE]

    def element_children(self) -> list["XMLNode"]:
        """Element children, in document order."""
        return [c for c in self.children if c.kind is NodeKind.ELEMENT]

    def get_attribute(self, name: str) -> Optional[str]:
        """Return the value of attribute ``name``, or None when absent."""
        for child in self.children:
            if child.kind is NodeKind.ATTRIBUTE and child.label == name:
                return child.value
        return None

    def text_value(self) -> str:
        """Concatenated data content of this node's subtree.

        For an attribute or text node this is its value; for an element it
        is the concatenation of all descendant text, in document order.
        This realises the "string value" used by predicates such as
        ``contains(//Description, "good")``.
        """
        if self.kind is not NodeKind.ELEMENT:
            return self.value or ""
        parts = []
        for node in self.descendants_or_self():
            if node.kind is NodeKind.TEXT:
                parts.append(node.value or "")
        return "".join(parts)

    def child_elements(self, label: str) -> list["XMLNode"]:
        """Element children labelled ``label``."""
        return [c for c in self.children if c.kind is NodeKind.ELEMENT and c.label == label]

    def first_child(self, label: str) -> Optional["XMLNode"]:
        """First element child labelled ``label``, or None."""
        for c in self.children:
            if c.kind is NodeKind.ELEMENT and c.label == label:
                return c
        return None

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def descendants_or_self(self) -> Iterator["XMLNode"]:
        """Pre-order traversal of the subtree rooted here (self first)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def descendants(self) -> Iterator["XMLNode"]:
        """Pre-order traversal of strict descendants."""
        nodes = self.descendants_or_self()
        next(nodes)  # drop self
        return nodes

    def ancestors(self) -> Iterator["XMLNode"]:
        """This node's ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "XMLNode":
        """The root of the tree containing this node."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def path_labels(self) -> list[str]:
        """Labels from the root down to this node (inclusive).

        Attribute labels are rendered with a leading ``@`` so the result can
        be compared against textual path expressions.
        """
        labels: list[str] = []
        node: Optional[XMLNode] = self
        while node is not None:
            if node.kind is NodeKind.TEXT:
                node = node.parent
                continue
            name = node.label or ""
            if node.kind is NodeKind.ATTRIBUTE:
                name = "@" + name
            labels.append(name)
            node = node.parent
        labels.reverse()
        return labels

    def sibling_index(self) -> int:
        """1-based position among same-label element siblings (for ``e[i]``)."""
        if self.parent is None:
            return 1
        position = 0
        for sibling in self.parent.children:
            if sibling.kind is self.kind and sibling.label == self.label:
                position += 1
                if sibling is self:
                    return position
        raise ValueError("node is not among its parent's children")

    # ------------------------------------------------------------------
    # Copying / equality
    # ------------------------------------------------------------------
    def clone(self, deep: bool = True) -> "XMLNode":
        """Copy this node; ``deep`` copies the whole subtree.

        The clone keeps the original ``node_id`` so that fragments preserve
        the ids needed for vertical reconstruction (§3.3).
        """
        copy = XMLNode(self.kind, label=self.label, value=self.value)
        copy.node_id = self.node_id
        if deep:
            for child in self.children:
                copy.append(child.clone(deep=True))
        return copy

    def clone_pruned(self, should_prune: Callable[["XMLNode"], bool]) -> "XMLNode":
        """Deep copy excluding any subtree whose root satisfies ``should_prune``.

        Used by the projection operator to implement the prune criterion Γ.
        """
        copy = XMLNode(self.kind, label=self.label, value=self.value)
        copy.node_id = self.node_id
        for child in self.children:
            if not should_prune(child):
                copy.append(child.clone_pruned(should_prune))
        return copy

    def tree_equal(self, other: "XMLNode", compare_ids: bool = False) -> bool:
        """Structural equality of two subtrees.

        Children are compared in document order except attributes, which are
        unordered per the XML data model. With ``compare_ids`` node ids must
        match too (useful for reconstruction tests).
        """
        if self.kind is not other.kind or self.label != other.label:
            return False
        if (self.value or "") != (other.value or ""):
            return False
        if compare_ids and self.node_id != other.node_id:
            return False
        mine_attrs = sorted(self.attributes(), key=lambda a: a.label or "")
        other_attrs = sorted(other.attributes(), key=lambda a: a.label or "")
        if len(mine_attrs) != len(other_attrs):
            return False
        for a, b in zip(mine_attrs, other_attrs):
            if not a.tree_equal(b, compare_ids=compare_ids):
                return False
        mine_rest = [c for c in self.children if c.kind is not NodeKind.ATTRIBUTE]
        other_rest = [c for c in other.children if c.kind is not NodeKind.ATTRIBUTE]
        if len(mine_rest) != len(other_rest):
            return False
        return all(
            a.tree_equal(b, compare_ids=compare_ids)
            for a, b in zip(mine_rest, other_rest)
        )

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return sum(1 for _ in self.descendants_or_self())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is NodeKind.TEXT:
            return f"<text {self.value!r}>"
        if self.kind is NodeKind.ATTRIBUTE:
            return f"<@{self.label}={self.value!r}>"
        return f"<{self.label} children={len(self.children)}>"


def assign_node_ids(root: XMLNode, start: int = 0) -> int:
    """Assign document-order ids to every node under ``root``.

    Returns the next unused id. Called when a tree becomes a document;
    fragments later *preserve* these ids (clones copy them) so vertical
    reconstruction can join on them.
    """
    next_id = start
    for node in root.descendants_or_self():
        node.node_id = next_id
        next_id += 1
    return next_id
