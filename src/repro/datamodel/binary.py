"""Compact binary encoding of XML data trees.

Serialized-text storage makes every access pay a full parse; this module
is the alternative built once at publish time: a *preorder node table*
whose tag/attribute names and data values are interned in a per-collection
:class:`StringPool`, plus a *prefix label* per node in the style of Koong
et al., so structural relationships resolve on label comparisons instead
of pointer walks:

* node ``a`` is an **ancestor** of ``b``  iff ``label(a)`` is a proper
  prefix of ``label(b)``;
* ``a`` is the **parent** of ``b``        iff ``label(a) == label(b)[:-1]``;
* two nodes are **document-ordered** by comparing labels lexicographically.

The table is stored in parallel arrays (kind, name id, value id, parent
index, explicit ``node_id``); preorder position doubles as a clustered
node range — the descendants of node ``i`` occupy exactly the positions
``(i, i + subtree_size(i))`` — so an index hit on a node prunes to a
contiguous slice of the table. Subtree sizes and prefix labels are
derived from the parent array, so the persistent form stays minimal.

Round-trip contract: ``BinaryXMLDocument.encode(doc).materialize()``
reproduces ``doc`` exactly — structure, values, and ``node_id``s (the
vertical-reconstruction keys, which fragments keep non-contiguous).
"""

from __future__ import annotations

import struct
from array import array
from typing import Iterator, Optional

from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import NodeKind, XMLNode

#: Node-kind bytes of the table (order mirrors :class:`NodeKind`).
KIND_ELEMENT = 0
KIND_ATTRIBUTE = 1
KIND_TEXT = 2

_KIND_TO_BYTE = {
    NodeKind.ELEMENT: KIND_ELEMENT,
    NodeKind.ATTRIBUTE: KIND_ATTRIBUTE,
    NodeKind.TEXT: KIND_TEXT,
}
_BYTE_TO_KIND = {code: kind for kind, code in _KIND_TO_BYTE.items()}

_POOL_MAGIC = b"PXSP"
_DOC_MAGIC = b"PXB1"


class StringPool:
    """Append-only interning of tag/attribute names and data values.

    One pool serves a whole collection, so repeated names ("Item",
    "Description", …) are stored once regardless of document count. Ids
    are dense and stable — persistence writes the pool once next to the
    binary documents and reloading never reparses any XML.
    """

    __slots__ = ("_strings", "_ids")

    def __init__(self, strings: Optional[list[str]] = None):
        self._strings: list[str] = list(strings) if strings else []
        self._ids: dict[str, int] = {
            value: index for index, value in enumerate(self._strings)
        }

    def intern(self, value: str) -> int:
        """Id of ``value``, adding it to the pool when new."""
        found = self._ids.get(value)
        if found is not None:
            return found
        index = len(self._strings)
        self._strings.append(value)
        self._ids[value] = index
        return index

    def lookup(self, value: str) -> Optional[int]:
        """Id of ``value`` if already interned (no insertion)."""
        return self._ids.get(value)

    def get(self, index: int) -> str:
        return self._strings[index]

    def __len__(self) -> int:
        return len(self._strings)

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Persistent form: magic, count, length-prefixed UTF-8 strings."""
        parts = [_POOL_MAGIC, struct.pack("!I", len(self._strings))]
        for value in self._strings:
            data = value.encode("utf-8")
            parts.append(struct.pack("!I", len(data)))
            parts.append(data)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "StringPool":
        if data[:4] != _POOL_MAGIC:
            raise ValueError("not a PartiX string pool")
        (count,) = struct.unpack_from("!I", data, 4)
        offset = 8
        strings: list[str] = []
        for _ in range(count):
            (size,) = struct.unpack_from("!I", data, offset)
            offset += 4
            strings.append(data[offset : offset + size].decode("utf-8"))
            offset += size
        return cls(strings)


class BinaryXMLDocument:
    """One document as a preorder node table over a shared pool.

    Parallel arrays, all indexed by preorder position:

    * ``kinds[i]``    — KIND_ELEMENT / KIND_ATTRIBUTE / KIND_TEXT;
    * ``names[i]``    — pool id of the tag/attribute name (-1 for text);
    * ``values[i]``   — pool id of the data value (-1 when none);
    * ``parents[i]``  — preorder position of the parent (-1 for the root);
    * ``node_ids[i]`` — the document's stable node id (fragments keep the
      source document's ids, so these are explicit, not positional);
    * ``sizes[i]``    — subtree size including self (derived);
    * ``labels[i]``   — the prefix label, a tuple of child ordinals from
      the root (derived; root is ``()``).
    """

    __slots__ = (
        "pool",
        "kinds",
        "names",
        "values",
        "parents",
        "node_ids",
        "sizes",
        "labels",
    )

    def __init__(
        self,
        pool: StringPool,
        kinds: bytearray,
        names: array,
        values: array,
        parents: array,
        node_ids: array,
    ):
        self.pool = pool
        self.kinds = kinds
        self.names = names
        self.values = values
        self.parents = parents
        self.node_ids = node_ids
        self.sizes, self.labels = _derive(parents)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def encode(cls, document: XMLDocument, pool: StringPool) -> "BinaryXMLDocument":
        """Encode a parsed document into the table (interning via ``pool``)."""
        kinds = bytearray()
        names = array("q")
        values = array("q")
        parents = array("q")
        node_ids = array("q")
        stack: list[tuple[XMLNode, int]] = [(document.root, -1)]
        while stack:
            node, parent = stack.pop()
            index = len(kinds)
            kinds.append(_KIND_TO_BYTE[node.kind])
            names.append(pool.intern(node.label) if node.label is not None else -1)
            values.append(pool.intern(node.value) if node.value is not None else -1)
            parents.append(parent)
            node_ids.append(node.node_id)
            for child in reversed(node.children):
                stack.append((child, index))
        return cls(pool, kinds, names, values, parents, node_ids)

    def materialize(
        self, name: Optional[str] = None, origin: Optional[str] = None
    ) -> XMLDocument:
        """Decode back to a DOM tree — the inverse of :meth:`encode`.

        Nodes are wired directly (no ``append`` re-validation: the table
        came from a tree that already satisfied the structural rules), so
        decoding skips tokenization entirely.
        """
        pool = self.pool
        count = len(self.kinds)
        nodes: list[XMLNode] = [None] * count  # type: ignore[list-item]
        for i in range(count):
            node = XMLNode.__new__(XMLNode)
            node.kind = _BYTE_TO_KIND[self.kinds[i]]
            name_id = self.names[i]
            value_id = self.values[i]
            node.label = pool.get(name_id) if name_id >= 0 else None
            node.value = pool.get(value_id) if value_id >= 0 else None
            node.children = []
            node.node_id = self.node_ids[i]
            node._content_kind = None
            parent = self.parents[i]
            if parent < 0:
                node.parent = None
            else:
                parent_node = nodes[parent]
                node.parent = parent_node
                parent_node.children.append(node)
                if node.kind is NodeKind.TEXT:
                    parent_node._content_kind = NodeKind.TEXT
                elif node.kind is NodeKind.ELEMENT:
                    parent_node._content_kind = NodeKind.ELEMENT
            nodes[i] = node
        return XMLDocument(
            nodes[0], name=name, assign_ids=False, origin=origin
        )

    # ------------------------------------------------------------------
    # Structure (all label/range based — no DOM involved)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.kinds)

    def children(self, index: int) -> Iterator[int]:
        """Preorder positions of the children of node ``index``."""
        end = index + self.sizes[index]
        child = index + 1
        while child < end:
            yield child
            child += self.sizes[child]

    def descendant_range(self, index: int) -> range:
        """The contiguous preorder slice holding the strict descendants."""
        return range(index + 1, index + self.sizes[index])

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """Proper-ancestor test.

        A node's prefix label is a proper prefix of every descendant's
        label — and because the table is preorder, those descendants are
        exactly the contiguous positions right after it, so the test is
        two integer comparisons instead of a tuple-prefix match.
        """
        return ancestor < descendant < ancestor + self.sizes[ancestor]

    def is_parent(self, parent: int, child: int) -> bool:
        """Prefix-label parent test: parent's label is child's minus one."""
        return self.labels[child][:-1] == self.labels[parent] and len(
            self.labels[child]
        ) == len(self.labels[parent]) + 1

    def text_value(self, index: int) -> str:
        """The node's string value (mirrors ``XMLNode.text_value``)."""
        if self.kinds[index] != KIND_ELEMENT:
            value = self.values[index]
            return self.pool.get(value) if value >= 0 else ""
        parts = []
        for i in self.descendant_range(index):
            if self.kinds[i] == KIND_TEXT:
                value = self.values[i]
                if value >= 0:
                    parts.append(self.pool.get(value))
        return "".join(parts)

    def name_of(self, index: int) -> Optional[str]:
        name = self.names[index]
        return self.pool.get(name) if name >= 0 else None

    def path_labels(self, index: int) -> tuple[str, ...]:
        """Root-to-node label path (attributes prefixed ``@``), text skipped."""
        labels: list[str] = []
        node = index
        while node >= 0:
            kind = self.kinds[node]
            if kind != KIND_TEXT:
                name = self.name_of(node) or ""
                labels.append("@" + name if kind == KIND_ATTRIBUTE else name)
            node = self.parents[node]
        labels.reverse()
        return tuple(labels)

    def sibling_ordinal(self, index: int) -> int:
        """1-based position among same-kind, same-name siblings (``e[i]``)."""
        parent = self.parents[index]
        if parent < 0:
            return 1
        position = 0
        for sibling in self.children(parent):
            if (
                self.kinds[sibling] == self.kinds[index]
                and self.names[sibling] == self.names[index]
            ):
                position += 1
                if sibling == index:
                    return position
        raise ValueError("node is not among its parent's children")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Persistent form; the pool is stored separately (per collection)."""
        count = len(self.kinds)
        parts = [
            _DOC_MAGIC,
            struct.pack("!I", count),
            bytes(self.kinds),
        ]
        for table in (self.names, self.values, self.parents, self.node_ids):
            parts.append(struct.pack(f"!{count}q", *table))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes, pool: StringPool) -> "BinaryXMLDocument":
        if data[:4] != _DOC_MAGIC:
            raise ValueError("not a PartiX binary document")
        (count,) = struct.unpack_from("!I", data, 4)
        offset = 8
        kinds = bytearray(data[offset : offset + count])
        if len(kinds) != count:
            raise ValueError("truncated binary document")
        offset += count
        tables = []
        for _ in range(4):
            table = array("q", struct.unpack_from(f"!{count}q", data, offset))
            offset += 8 * count
            tables.append(table)
        names, values, parents, node_ids = tables
        return cls(pool, kinds, names, values, parents, node_ids)


def _derive(parents: array) -> tuple[array, tuple[tuple[int, ...], ...]]:
    """Subtree sizes and prefix labels from the parent array alone."""
    count = len(parents)
    sizes = array("q", [1] * count)
    for i in range(count - 1, 0, -1):
        sizes[parents[i]] += sizes[i]
    labels: list[tuple[int, ...]] = [()] * count
    child_counts = [0] * count
    for i in range(1, count):
        parent = parents[i]
        labels[i] = labels[parent] + (child_counts[parent],)
        child_counts[parent] += 1
    return sizes, tuple(labels)
