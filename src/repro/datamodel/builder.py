"""Fluent construction of XML data trees.

The :func:`elem` helper builds trees in one expression, which keeps tests
and generators readable::

    root = elem(
        "Item",
        elem("Code", "I-001"),
        elem("Section", "CD"),
        elem("Name", "Abbey Road"),
        price="12.99",
    )

Positional arguments are children: ``XMLNode`` instances are appended as-is,
strings become text nodes. Keyword arguments become attributes.
"""

from __future__ import annotations

from typing import Union

from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import XMLNode

Child = Union[XMLNode, str, int, float]


def elem(label: str, *children: Child, **attributes: Union[str, int, float]) -> XMLNode:
    """Build an element with the given children and attributes."""
    node = XMLNode.element(label)
    for name, value in attributes.items():
        node.append(XMLNode.attribute(name, str(value)))
    for child in children:
        if isinstance(child, XMLNode):
            node.append(child)
        else:
            node.append(XMLNode.text(str(child)))
    return node


def doc(root: XMLNode, name: str | None = None) -> XMLDocument:
    """Wrap a root element into a document (assigning node ids)."""
    return XMLDocument(root, name=name)
