"""XML data model: data trees, documents and collections (paper §3.1)."""

from repro.datamodel.builder import doc, elem
from repro.datamodel.collection import Collection, RepositoryKind
from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import NodeKind, XMLNode, assign_node_ids

__all__ = [
    "Collection",
    "NodeKind",
    "RepositoryKind",
    "XMLDocument",
    "XMLNode",
    "assign_node_ids",
    "doc",
    "elem",
]
