"""Indexes of the storage engine, built over the binary node tables.

Mirrors what eXist set up for the paper's experiments ("some indexes were
automatically created by the eXist DBMS to speed up text search operations
and path expressions evaluation"):

* :class:`FullTextIndex` — inverted word index over all text content;
  answers ``contains`` predicates with a (sound) superset of documents.
* :class:`ValueIndex` — maps ``(element label, value)`` to documents
  *and* the prefix labels of the matching nodes.
* :class:`ElementIndex` — maps element/attribute labels to documents;
  answers existential path tests.
* :class:`PathIndex` — root-to-node label paths, also with per-document
  node prefix labels.
* :class:`RangeIndex` — ordered values for ``<``/``>`` predicates.

Indexes ingest :class:`~repro.datamodel.binary.BinaryXMLDocument` tables
(one linear pass over the preorder arrays — no DOM). Document-level
lookups return sound supersets, exactly as before. The value and path
indexes additionally record each hit's *prefix label*, so a hit prunes
to a node range: the label identifies the node's position and, through
the table's subtree sizes, the contiguous preorder slice beneath it —
the engine's post-index verification starts from those labels instead of
re-scanning whole documents.
"""

from __future__ import annotations

import re

from repro.datamodel.binary import (
    KIND_ATTRIBUTE,
    KIND_ELEMENT,
    KIND_TEXT,
    BinaryXMLDocument,
)

_WORD_RE = re.compile(r"[A-Za-z0-9]+")

#: A node's prefix label: child ordinals from the root (root = ``()``).
PrefixLabel = tuple[int, ...]


def tokenize_text(text: str) -> set[str]:
    """Lowercased word tokens of a text value."""
    return {match.group(0).lower() for match in _WORD_RE.finditer(text)}


def _value_at(binary: BinaryXMLDocument, index: int) -> str:
    value = binary.values[index]
    return binary.pool.get(value) if value >= 0 else ""


def _immediate_text(binary: BinaryXMLDocument, index: int) -> str | None:
    """Concatenated direct text children of an element, None when none."""
    texts = [
        _value_at(binary, child)
        for child in binary.children(index)
        if binary.kinds[child] == KIND_TEXT
    ]
    return "".join(texts) if texts else None


class FullTextIndex:
    """Inverted index: token → document names."""

    def __init__(self) -> None:
        self._postings: dict[str, set[str]] = {}

    def add_document(self, name: str, binary: BinaryXMLDocument) -> None:
        for index in range(len(binary)):
            if binary.kinds[index] != KIND_ELEMENT:
                for token in tokenize_text(_value_at(binary, index)):
                    self._postings.setdefault(token, set()).add(name)

    def remove_document(self, name: str) -> None:
        for postings in self._postings.values():
            postings.discard(name)

    def lookup_substring(self, needle: str) -> set[str]:
        """Documents whose text *may* contain ``needle``.

        ``needle`` is split into word tokens; a candidate document must
        hold, for every needle token, some vocabulary token containing it
        as a substring (handles stemming-free matches like ``good`` in
        ``goodness``). A needle with no word characters cannot be pruned.
        """
        tokens = tokenize_text(needle)
        if not tokens:
            return self.all_documents()
        result: set[str] | None = None
        for token in tokens:
            matching: set[str] = set()
            for vocab, postings in self._postings.items():
                if token in vocab:
                    matching |= postings
            result = matching if result is None else (result & matching)
        return result or set()

    def all_documents(self) -> set[str]:
        union: set[str] = set()
        for postings in self._postings.values():
            union |= postings
        return union

    def vocabulary_size(self) -> int:
        return len(self._postings)


class ValueIndex:
    """Equality index: (element label, exact value) → documents + labels."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], dict[str, list[PrefixLabel]]] = {}
        self._labels: set[str] = set()

    def _add(self, key: tuple[str, str], name: str, label: PrefixLabel) -> None:
        self._entries.setdefault(key, {}).setdefault(name, []).append(label)

    def add_document(self, name: str, binary: BinaryXMLDocument) -> None:
        for index in range(len(binary)):
            kind = binary.kinds[index]
            if kind == KIND_ATTRIBUTE:
                label = "@" + (binary.name_of(index) or "")
                self._add(
                    (label, _value_at(binary, index)),
                    name,
                    binary.labels[index],
                )
                self._labels.add(label)
            elif kind == KIND_ELEMENT:
                text = _immediate_text(binary, index)
                if text is not None:
                    label = binary.name_of(index) or ""
                    self._add((label, text), name, binary.labels[index])
                    self._labels.add(label)

    def remove_document(self, name: str) -> None:
        for postings in self._entries.values():
            postings.pop(name, None)

    def covers_label(self, label: str) -> bool:
        """Is this label indexed at all (i.e. can a lookup be trusted)?"""
        return label in self._labels

    def lookup(self, label: str, value: str) -> set[str]:
        """Documents holding an element/attribute ``label`` with ``value``."""
        return set(self._entries.get((label, value), {}))

    def lookup_nodes(self, label: str, value: str) -> dict[str, list[PrefixLabel]]:
        """Per-document prefix labels of the hit nodes — an index hit
        narrows verification to those nodes' ranges, not the whole
        document."""
        return {
            name: list(labels)
            for name, labels in self._entries.get((label, value), {}).items()
        }

    def entry_count(self) -> int:
        return len(self._entries)


class PathIndex:
    """Structural index: root-to-node label paths → documents + labels.

    Keys are label sequences like ``("Store", "Items", "Item",
    "Section")`` — the structural summary eXist and most native XML
    stores maintain. It answers existential tests (does any document
    contain a node reachable by this path?) more precisely than the
    label-only :class:`ElementIndex`, including simple descendant
    patterns (suffix matching), and records the prefix labels of the
    nodes standing at each path.
    """

    def __init__(self) -> None:
        self._postings: dict[tuple[str, ...], dict[str, list[PrefixLabel]]] = {}

    def add_document(self, name: str, binary: BinaryXMLDocument) -> None:
        for index in range(len(binary)):
            if binary.kinds[index] == KIND_TEXT:
                continue
            key = binary.path_labels(index)
            self._postings.setdefault(key, {}).setdefault(name, []).append(
                binary.labels[index]
            )

    def remove_document(self, name: str) -> None:
        for postings in self._postings.values():
            postings.pop(name, None)

    def known_paths(self) -> list[tuple[str, ...]]:
        return list(self._postings)

    def lookup_exact(self, labels: tuple[str, ...]) -> set[str]:
        """Documents containing a node at exactly this root-to-node path."""
        return set(self._postings.get(labels, {}))

    def lookup_exact_nodes(
        self, labels: tuple[str, ...]
    ) -> dict[str, list[PrefixLabel]]:
        """Per-document prefix labels of the nodes at this exact path."""
        return {
            name: list(found)
            for name, found in self._postings.get(labels, {}).items()
        }

    def lookup_suffix(self, labels: tuple[str, ...]) -> set[str]:
        """Documents containing a node whose path *ends with* ``labels``.

        Answers leading-``//`` patterns: ``//Items/Item`` matches any
        stored path with the suffix ``("Items", "Item")``.
        """
        result: set[str] = set()
        size = len(labels)
        for key, postings in self._postings.items():
            if len(key) >= size and key[-size:] == labels:
                result |= set(postings)
        return result


class RangeIndex:
    """Ordered index: per element label, values sorted for range lookups.

    Answers ``<``, ``<=``, ``>`` and ``>=`` predicates with a sound
    document superset that mirrors the comparison semantics of
    :mod:`repro.paths.predicates`: values that parse as numbers compare
    numerically, everything else lexicographically — so a numeric probe
    must consult both the numeric entries (numerically) and the
    non-numeric entries (as strings), and a non-numeric probe consults
    every entry as a string.
    """

    def __init__(self) -> None:
        # label -> ([(float, doc)], [(raw, doc)] non-numeric, [(raw, doc)] all)
        self._numeric: dict[str, list[tuple[float, str]]] = {}
        self._non_numeric: dict[str, list[tuple[str, str]]] = {}
        self._all: dict[str, list[tuple[str, str]]] = {}
        self._sorted = True

    def add_document(self, name: str, binary: BinaryXMLDocument) -> None:
        for index in range(len(binary)):
            if binary.kinds[index] != KIND_ELEMENT:
                continue
            raw = _immediate_text(binary, index)
            if raw is None:
                continue
            label = binary.name_of(index) or ""
            self._all.setdefault(label, []).append((raw, name))
            try:
                self._numeric.setdefault(label, []).append((float(raw), name))
            except ValueError:
                self._non_numeric.setdefault(label, []).append((raw, name))
        self._sorted = False

    def remove_document(self, name: str) -> None:
        for table in (self._numeric, self._non_numeric, self._all):
            for label in table:
                table[label] = [
                    entry for entry in table[label] if entry[1] != name
                ]

    def covers_label(self, label: str) -> bool:
        return label in self._all

    def lookup(self, label: str, op: str, value) -> set[str]:
        """Documents with a ``label`` node standing in ``op`` to ``value``."""
        self._ensure_sorted()
        result: set[str] = set()
        try:
            numeric_value: float | None = float(value)
        except (TypeError, ValueError):
            numeric_value = None
        if numeric_value is not None:
            result |= _range_scan(
                self._numeric.get(label, []), op, numeric_value
            )
            # Non-numeric stored values compare against str(value).
            result |= _range_scan(
                self._non_numeric.get(label, []), op, str(value)
            )
        else:
            result |= _range_scan(self._all.get(label, []), op, str(value))
        return result

    def _ensure_sorted(self) -> None:
        if self._sorted:
            return
        for table in (self._numeric, self._non_numeric, self._all):
            for label in table:
                table[label].sort(key=lambda entry: (entry[0],))
        self._sorted = True


def _range_scan(entries, op: str, value) -> set[str]:
    """Documents whose entry value satisfies ``value_entry op value``."""
    import bisect

    keys = [entry[0] for entry in entries]
    if op in ("<", "<="):
        cut = (
            bisect.bisect_left(keys, value)
            if op == "<"
            else bisect.bisect_right(keys, value)
        )
        return {doc for _, doc in entries[:cut]}
    if op in (">", ">="):
        cut = (
            bisect.bisect_right(keys, value)
            if op == ">"
            else bisect.bisect_left(keys, value)
        )
        return {doc for _, doc in entries[cut:]}
    raise ValueError(f"range lookup does not support operator {op!r}")


class ElementIndex:
    """Presence index: element/attribute label → document names."""

    def __init__(self) -> None:
        self._postings: dict[str, set[str]] = {}

    def add_document(self, name: str, binary: BinaryXMLDocument) -> None:
        for index in range(len(binary)):
            kind = binary.kinds[index]
            if kind == KIND_ELEMENT:
                self._postings.setdefault(
                    binary.name_of(index) or "", set()
                ).add(name)
            elif kind == KIND_ATTRIBUTE:
                self._postings.setdefault(
                    "@" + (binary.name_of(index) or ""), set()
                ).add(name)

    def remove_document(self, name: str) -> None:
        for postings in self._postings.values():
            postings.discard(name)

    def lookup(self, label: str) -> set[str]:
        """Documents containing at least one node with ``label``."""
        return set(self._postings.get(label, set()))

    def known_labels(self) -> set[str]:
        return set(self._postings)
