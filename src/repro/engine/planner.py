"""Index-assisted document pruning.

Given the selection predicate extracted from a query
(:mod:`repro.xquery.analysis`), the planner intersects index lookups to
compute the candidate documents that must actually be parsed. Anything it
cannot handle falls back to "all documents" — pruning is an optimization,
never a correctness requirement.

Soundness argument: the extracted predicate parts are *necessary*
conditions for a document to contribute query results, and each index
lookup returns a superset of the documents satisfying its atom. Hence the
intersection is a superset of the contributing documents.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.store import StoredCollection
from repro.paths.predicates import (
    And,
    Comparison,
    Contains,
    Exists,
    Or,
    Predicate,
    StartsWith,
)


class Planner:
    """Chooses candidate documents for a query on one collection."""

    def __init__(self, use_indexes: bool = True):
        self.use_indexes = use_indexes

    def candidate_documents(
        self,
        collection: StoredCollection,
        predicate: Optional[Predicate],
        use_indexes: Optional[bool] = None,
    ) -> tuple[list[str], int]:
        """(candidate document names, number of index lookups performed).

        ``use_indexes`` overrides the planner default for one call — the
        per-query knob coordinators use to force the paper-faithful
        scan-everything path (or an index probe) regardless of how the
        site was configured.
        """
        all_names = collection.names()
        enabled = self.use_indexes if use_indexes is None else use_indexes
        if not enabled or predicate is None:
            return all_names, 0
        self._lookups = 0
        candidates = self._candidates_for(collection, predicate)
        if candidates is None:
            return all_names, self._lookups
        # Preserve store order for determinism.
        candidate_set = candidates
        return [n for n in all_names if n in candidate_set], self._lookups

    # ------------------------------------------------------------------
    def _candidates_for(
        self, collection: StoredCollection, predicate: Predicate
    ) -> Optional[set[str]]:
        """Document-name superset for ``predicate`` (None = no pruning)."""
        if isinstance(predicate, And):
            result: Optional[set[str]] = None
            for part in predicate.parts:
                candidates = self._candidates_for(collection, part)
                if candidates is None:
                    continue
                result = candidates if result is None else (result & candidates)
            return result
        if isinstance(predicate, Or):
            union: set[str] = set()
            for part in predicate.parts:
                candidates = self._candidates_for(collection, part)
                if candidates is None:
                    return None  # one unprunable branch defeats the union
                union |= candidates
            return union
        if isinstance(predicate, Contains):
            self._lookups += 1
            return collection.fulltext.lookup_substring(predicate.needle)
        if isinstance(predicate, StartsWith):
            # A value starting with the prefix contains the prefix's tokens.
            self._lookups += 1
            return collection.fulltext.lookup_substring(predicate.prefix)
        if isinstance(predicate, Comparison) and predicate.op == "=":
            label = self._terminal_label(predicate)
            if label is not None and collection.values.covers_label(label):
                self._lookups += 1
                return collection.values.lookup(label, str(predicate.value))
            return None
        if isinstance(predicate, Comparison) and predicate.op in ("<", "<=", ">", ">="):
            label = self._terminal_label(predicate)
            if (
                label is not None
                and not label.startswith("@")
                and collection.ranges.covers_label(label)
            ):
                self._lookups += 1
                return collection.ranges.lookup(label, predicate.op, predicate.value)
            return None
        if isinstance(predicate, Exists):
            last = predicate.path.last
            if last.is_wildcard:
                return None
            structural = self._structural_lookup(collection, predicate.path)
            if structural is not None:
                return structural
            label = ("@" + last.name) if last.is_attribute else last.name
            self._lookups += 1
            return collection.elements.lookup(label)
        return None

    def _structural_lookup(self, collection, path) -> Optional[set[str]]:
        """Use the structural path index when the path is exact enough.

        Simple child-axis paths map to an exact structural key; a single
        leading ``//`` followed by child steps maps to a suffix probe.
        Anything else falls back to the label index.
        """
        from repro.paths.ast import Axis

        steps = path.steps
        if any(step.is_wildcard or step.position is not None for step in steps):
            return None
        labels = tuple(
            ("@" + step.name) if step.is_attribute else step.name
            for step in steps
        )
        if all(step.axis is Axis.CHILD for step in steps):
            self._lookups += 1
            return collection.paths.lookup_exact(labels)
        if steps[0].axis is Axis.DESCENDANT and all(
            step.axis is Axis.CHILD for step in steps[1:]
        ):
            self._lookups += 1
            return collection.paths.lookup_suffix(labels)
        return None

    def _terminal_label(self, predicate: Comparison) -> Optional[str]:
        last = predicate.path.last
        if last.is_wildcard:
            return None
        return ("@" + last.name) if last.is_attribute else last.name
