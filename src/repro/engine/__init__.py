"""MiniX: the single-site XML DBMS substrate (eXist stand-in)."""

from repro.engine.database import XMLEngine, serialize_sequence
from repro.engine.indexes import (
    ElementIndex,
    FullTextIndex,
    RangeIndex,
    ValueIndex,
    tokenize_text,
)
from repro.engine.planner import Planner
from repro.engine.stats import EngineStats, QueryResult
from repro.engine.store import DocumentStore, StoredCollection, StoredDocument

__all__ = [
    "DocumentStore",
    "ElementIndex",
    "EngineStats",
    "FullTextIndex",
    "Planner",
    "RangeIndex",
    "QueryResult",
    "StoredCollection",
    "StoredDocument",
    "ValueIndex",
    "XMLEngine",
    "serialize_sequence",
    "tokenize_text",
]
