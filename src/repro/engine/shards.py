"""Site-local shard pipeline: intra-site parallel query evaluation.

PartiX's speedups come from across-site parallelism; within a site one
fat fragment is still a serial scan. Following Sato et al.'s
divide-and-conquer XPath parallelization, this module partitions a
fragment's *pruned candidate documents* into **shards** — picklable
slices of the collection's binary node tables (the ``.pxb`` encoding
makes documents cheap to ship to worker processes or inherit via fork) —
runs the same query per shard in a per-engine ``ProcessPoolExecutor``,
and merges the partial results with the very machinery the distributed
composer uses across fragments:

* **concat** results join per-shard serialized pieces in shard
  (candidate) order — by construction identical to
  :func:`~repro.engine.database.serialize_sequence` over the full
  sequence;
* **count / exists / empty** fold O(1)-byte per-shard partials through
  the shared :func:`~repro.partix.composer.fold_aggregate_values`
  (plan-order fold, same as cross-fragment pushdown);
* **sum / avg / min / max** ship the shards' *atomized values* and apply
  the evaluator's own aggregate semantics over the recombined sequence —
  preserving the serial run's float summation order and mixed-type
  min/max behaviour bit for bit.

Shardability is decided statically and conservatively by
:func:`shard_script`: a query that cannot provably be partitioned by
document runs serial at any requested degree, so answers are
byte-identical in every mode and at every degree — parallelism is purely
a performance decision.

Per-shard :class:`~repro.engine.stats.EngineStats` are returned as plain
dicts and absorbed into the parent query's accumulator, so the sharded
counters sum *exactly* to what the serial run would have charged: the
parent charges scan/prune once (``index_lookups``, ``documents_scanned``,
``documents_pruned``, ``label_pruned``), the workers charge only the
materialization and evaluation of their own documents.
"""

from __future__ import annotations

import itertools
import math
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.datamodel.binary import BinaryXMLDocument, StringPool
from repro.engine.stats import EngineStats
from repro.errors import XQueryTypeError
from repro.xquery.analysis import DECOMPOSABLE_AGGREGATES
from repro.xquery.ast_nodes import (
    AttributeConstructor,
    AxisStep,
    BinaryOp,
    ElementConstructor,
    Expr,
    FLWOR,
    FilterExpr,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    PathApply,
    Quantified,
    RangeExpr,
    SequenceExpr,
    TextConstructor,
    UnaryOp,
)
from repro.xquery.evaluator import DynamicContext, Evaluator
from repro.xquery.parser import parse_query
from repro.xquery.values import atomic_to_string, atomize, to_number

#: Aggregates whose per-shard partial is a single scalar folded by the
#: shared cross-fragment fold (exact: integer counts and booleans).
FOLD_AGGREGATES = frozenset({"count", "exists", "empty"})

#: Aggregates that ship atomized shard values instead of a folded scalar,
#: so the parent reproduces the serial run's arithmetic order exactly.
VALUE_AGGREGATES = frozenset({"sum", "avg", "min", "max"})


# ----------------------------------------------------------------------
# Fork-inherited tables (zero-copy shipping on fork platforms)
# ----------------------------------------------------------------------
#: Per-pool snapshots of binary node tables, registered by the parent
#: engine immediately before it forks its worker pool. Forked workers
#: see the registry copy-on-write, so a task whose documents were
#: already stored at fork time ships only their *names* — no re-pickling
#: of megabyte tables per query. Documents stored after the fork (or any
#: pool under a spawn start method) fall back to explicit bytes in the
#: task. Keyed by a process-unique token so several engines in one
#: process never collide.
_FORK_INHERITED: dict[int, dict[tuple[str, str], "BinaryXMLDocument"]] = {}

_fork_tokens = itertools.count(1)

#: Worker-local cap on materialized trees kept across tasks. Mirrors the
#: parent engine's parsed-document LRU: the pool outlives a single
#: query, so a worker that re-receives a document it already
#: materialized charges a ``cache_hits`` (plus the simulated
#: per-document overhead) exactly like the serial path's warm cache.
WORKER_CACHE_DOCUMENTS = 128

_worker_cache: "OrderedDict[tuple[int, str, str], object]" = OrderedDict()


def new_fork_token() -> int:
    """A process-unique key for one engine's fork snapshot."""
    return next(_fork_tokens)


def register_fork_snapshot(
    token: int, snapshot: dict[tuple[str, str], "BinaryXMLDocument"]
) -> None:
    """Publish ``snapshot`` for inheritance; call *before* forking."""
    _FORK_INHERITED[token] = snapshot


def forget_fork_snapshot(token: Optional[int]) -> None:
    """Drop a snapshot when its pool is released (idempotent)."""
    if token is not None:
        _FORK_INHERITED.pop(token, None)


# ----------------------------------------------------------------------
# Static shardability analysis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardScript:
    """How one query's evaluation decomposes over document shards."""

    mode: str  # "concat" | "fold" | "values"
    aggregate: Optional[str] = None


def _subexpressions(expr) -> Iterator[Expr]:
    """Direct sub-expressions of one AST node (closed over the subset)."""
    if isinstance(expr, FLWOR):
        for clause in expr.clauses:
            yield clause.seq if isinstance(clause, ForClause) else clause.expr
        if expr.where is not None:
            yield expr.where
        for spec in expr.order_by:
            yield spec.key
        yield expr.return_expr
    elif isinstance(expr, PathApply):
        if expr.primary is not None:
            yield expr.primary
        for step in expr.steps:
            yield from step.predicates
    elif isinstance(expr, AxisStep):
        yield from expr.predicates
    elif isinstance(expr, FilterExpr):
        yield expr.primary
        yield from expr.predicates
    elif isinstance(expr, FunctionCall):
        yield from expr.args
    elif isinstance(expr, SequenceExpr):
        yield from expr.items
    elif isinstance(expr, RangeExpr):
        yield expr.start
        yield expr.end
    elif isinstance(expr, BinaryOp):
        yield expr.left
        yield expr.right
    elif isinstance(expr, UnaryOp):
        yield expr.operand
    elif isinstance(expr, IfExpr):
        yield expr.condition
        yield expr.then_branch
        yield expr.else_branch
    elif isinstance(expr, Quantified):
        yield expr.seq
        yield expr.condition
    elif isinstance(
        expr, (ElementConstructor, AttributeConstructor, TextConstructor)
    ):
        yield from expr.content


def _input_calls(expr) -> tuple[int, int]:
    """``(collection_calls, doc_calls)`` anywhere in the expression."""
    collections = docs = 0
    if isinstance(expr, FunctionCall):
        if expr.name == "collection":
            collections += 1
        elif expr.name == "doc":
            docs += 1
    for child in _subexpressions(expr):
        inner_collections, inner_docs = _input_calls(child)
        collections += inner_collections
        docs += inner_docs
    return collections, docs


def _is_collection_sequence(expr) -> bool:
    """Is ``expr`` the collection's root sequence, possibly navigated?

    ``collection("c")`` or ``collection("c")/a//b[...]``: path steps and
    their bracketed predicates apply *per context node* — per document —
    so they commute with a by-document partition. A
    :class:`FilterExpr` over the collection does not (its predicates see
    the cross-document sequence, positionally), so it is rejected.
    """
    if isinstance(expr, FunctionCall) and expr.name == "collection":
        return True
    return (
        isinstance(expr, PathApply)
        and expr.primary is not None
        and _is_collection_sequence(expr.primary)
    )


def _concat_shardable(expr) -> bool:
    """Does by-document partition + ordered concat reproduce ``expr``?

    Two shapes qualify (the single ``collection()`` call is known to be
    inside ``expr``):

    * a path over the collection roots — per-document navigation;
    * a FLWOR whose *first* ``for`` iterates the collection sequence,
      with no position variable (it would number items across shards),
      no earlier ``for`` (tuple-stream order would interleave), and no
      ``order by`` (a cross-document sort does not commute with
      partition). ``let`` bindings before the driving ``for`` cannot
      reference the collection — the single call sits in the ``for``.
    """
    if _is_collection_sequence(expr):
        return True
    if not isinstance(expr, FLWOR):
        return False
    if expr.order_by:
        return False
    driving = None
    for clause in expr.clauses:
        if isinstance(clause, ForClause):
            driving = clause
            break
    if driving is None or driving.position_var is not None:
        return False
    return _is_collection_sequence(driving.seq)


def shard_script(expr) -> Optional[ShardScript]:
    """The shard decomposition of ``expr``, or None when it must run
    serial. Conservative: anything not provably partitionable by
    document — multiple inputs, ``doc()``, positional or ordering
    constructs over the cross-document sequence — returns None."""
    if _input_calls(expr) != (1, 0):
        return None
    if (
        isinstance(expr, FunctionCall)
        and expr.name in DECOMPOSABLE_AGGREGATES
        and len(expr.args) == 1
        and _concat_shardable(expr.args[0])
    ):
        mode = "fold" if expr.name in FOLD_AGGREGATES else "values"
        return ShardScript(mode=mode, aggregate=expr.name)
    if _concat_shardable(expr):
        return ShardScript(mode="concat")
    return None


# ----------------------------------------------------------------------
# Shard tasks (the picklable unit of work)
# ----------------------------------------------------------------------
@dataclass
class ShardDocument:
    """One document of a shard: its binary node table plus metadata.

    ``table`` is None when the worker inherited this document's table at
    fork time (see :data:`_FORK_INHERITED`) — the name is the whole
    shipment; otherwise it carries the explicit ``.pxb`` byte form.
    """

    name: str
    origin: str
    table: Optional[bytes]
    size: int  # stored serialized size — the bytes_parsed charge


@dataclass
class ShardTask:
    """Everything a worker needs: self-contained and picklable.

    ``pool`` (the collection's string pool bytes) is shipped only when at
    least one document carries explicit table bytes — fork-inherited
    tables reference their pool directly.
    """

    query: str
    script: ShardScript
    pool: Optional[bytes]
    documents: list[ShardDocument]
    per_document_overhead: float = 0.0
    token: int = 0
    collection: str = ""
    cache_documents: bool = False  # mirror of the engine's cache_parsed


@dataclass
class ShardResult:
    """One shard's partial result plus its engine-stats charges."""

    text: str = ""
    item_count: int = 0
    partial: list = field(default_factory=list)  # "fold" scalar
    values: list = field(default_factory=list)  # "values" atomics
    stats: dict = field(default_factory=dict)


def partition_candidates(candidates: list[str], degree: int) -> list[list[str]]:
    """Split ``candidates`` into ``degree`` contiguous, order-preserving
    slices (the fold relies on shard order == candidate order). Slices
    differ in length by at most one; empty slices are dropped."""
    degree = max(1, min(degree, len(candidates)))
    base, extra = divmod(len(candidates), degree)
    shards: list[list[str]] = []
    start = 0
    for index in range(degree):
        size = base + (1 if index < extra else 0)
        if size:
            shards.append(candidates[start : start + size])
        start += size
    return shards


class _ShardProvider:
    """DocumentProvider over a shard's materialized roots.

    The shardability gate guarantees exactly one ``collection()`` call
    and no ``doc()`` calls, so the collection name is irrelevant — the
    shard *is* the (pruned, partitioned) collection.
    """

    def __init__(self, roots: list):
        self._roots = roots

    def collection_roots(self, name: Optional[str]) -> list:
        return list(self._roots)

    def document_root(self, name: str):  # pragma: no cover - gated out
        return None


def run_shard(task: ShardTask) -> ShardResult:
    """Worker entry point: evaluate one shard on its binary tables.

    Charges exactly the counters the serial path's ``load_parsed`` +
    evaluation would have charged for these documents — and nothing
    else; scan/prune counters belong to the parent. When the engine
    caches parsed documents (``cache_parsed``), a document this worker
    already materialized on an earlier task charges a ``cache_hits``
    (plus the per-document overhead), mirroring the serial path's warm
    parsed-document LRU; with caching off every task re-materializes,
    exactly like the serial path does.
    """
    stats = EngineStats()
    pool = (
        StringPool.from_bytes(task.pool) if task.pool is not None else None
    )
    roots = []
    for document in task.documents:
        cache_key = (task.token, task.collection, document.name)
        if task.cache_documents and document.table is None:
            cached = _worker_cache.get(cache_key)
            if cached is not None:
                _worker_cache.move_to_end(cache_key)
                stats.cache_hits += 1
                stats.simulated_overhead_seconds += task.per_document_overhead
                roots.append(cached.root)
                continue
        started = time.perf_counter()
        if document.table is None:
            table = _FORK_INHERITED[task.token][
                (task.collection, document.name)
            ]
        else:
            table = BinaryXMLDocument.from_bytes(document.table, pool)
        tree = table.materialize(name=document.name, origin=document.origin)
        stats.parse_seconds += time.perf_counter() - started
        stats.binary_decodes += 1
        stats.documents_parsed += 1
        stats.bytes_parsed += document.size
        stats.simulated_overhead_seconds += task.per_document_overhead
        if task.cache_documents and document.table is None:
            # Only fork-inherited documents are cached: their snapshot
            # entry pins the table, so the cached tree can never go
            # stale (a re-stored document stops matching the snapshot
            # and ships explicit bytes instead).
            _worker_cache[cache_key] = tree
            if len(_worker_cache) > WORKER_CACHE_DOCUMENTS:
                _worker_cache.popitem(last=False)
        roots.append(tree.root)
    # Imported here: the engine imports this module, and the serializer
    # helper lives next to the engine.
    from repro.engine.database import serialize_sequence
    from repro.xquery.functions import lookup

    expr = parse_query(task.query)
    provider = _ShardProvider(roots)
    context = DynamicContext(provider=provider)
    eval_started = time.perf_counter()
    if task.script.mode == "concat":
        items = Evaluator().evaluate(expr, context)
        stats.evaluation_seconds += time.perf_counter() - eval_started
        return ShardResult(
            text=serialize_sequence(items),
            item_count=len(items),
            stats=dict(vars(stats)),
        )
    # Aggregate shard: evaluate the aggregate's argument once (one pass
    # over the shard's documents, exactly like the serial evaluation).
    assert isinstance(expr, FunctionCall)  # guaranteed by shard_script
    items = Evaluator().evaluate(expr.args[0], context)
    if task.script.mode == "fold":
        partial = lookup(task.script.aggregate)(context, [items])
        stats.evaluation_seconds += time.perf_counter() - eval_started
        return ShardResult(
            item_count=len(items),
            partial=list(partial),
            stats=dict(vars(stats)),
        )
    values = atomize(items)
    stats.evaluation_seconds += time.perf_counter() - eval_started
    return ShardResult(
        item_count=len(items),
        values=values,
        stats=dict(vars(stats)),
    )


# ----------------------------------------------------------------------
# Fold: merge shard partials into the serial answer
# ----------------------------------------------------------------------
def fold_shard_results(
    script: ShardScript, results: list[ShardResult]
) -> tuple[list, str]:
    """``(items, result_text)`` — byte-identical to the serial run.

    ``results`` must be in shard (candidate) order; every fold below is
    order-preserving, so the recombined answer matches the serial
    evaluation of the same query over the same pruned candidates.
    """
    if script.mode == "concat":
        # serialize_sequence is "\n".join over *items*; a shard with
        # items whose serialization is empty still contributes its
        # separators, so join on item presence, not text truthiness.
        text = "\n".join(
            result.text for result in results if result.item_count
        )
        return [], text
    if script.mode == "fold":
        # The shared cross-fragment fold, partials in shard order.
        from repro.partix.composer import fold_aggregate_values

        text, items = fold_aggregate_values(
            script.aggregate, [result.partial for result in results]
        )
        return items, text
    return _fold_values(script.aggregate, results)


def _fold_values(
    op: Optional[str], results: list[ShardResult]
) -> tuple[list, str]:
    """Value-shipping fold: reproduce the evaluator's own aggregate
    semantics (see ``repro.xquery.functions``) over the recombined
    atomized sequence — same summation order, same mixed-type fallback —
    so the answer matches the serial run bit for bit."""
    from repro.engine.database import serialize_sequence

    item_count = sum(result.item_count for result in results)
    combined: list = []
    for result in results:
        combined.extend(result.values)
    if op == "sum":
        numbers = [to_number(value) for value in combined]
        if any(math.isnan(number) for number in numbers):
            raise XQueryTypeError("sum() over non-numeric values")
        items: list = [float(sum(numbers))]
    elif op == "avg":
        if item_count == 0:
            return [], ""
        numbers = [to_number(value) for value in combined]
        if any(math.isnan(number) for number in numbers):
            raise XQueryTypeError("avg() over non-numeric values")
        items = [float(sum(numbers)) / len(combined)]
    elif op in ("min", "max"):
        if item_count == 0:
            return [], ""
        pick = min if op == "min" else max
        numbers = [to_number(value) for value in combined]
        if all(not math.isnan(number) for number in numbers):
            items = [pick(numbers)]
        else:
            items = [pick(atomic_to_string(value) for value in combined)]
    else:  # pragma: no cover - shard_script only emits the four ops
        raise ValueError(f"unknown value aggregate {op!r}")
    return items, serialize_sequence(items)
