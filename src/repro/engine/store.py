"""Document store: named collections of serialized XML documents.

Documents are stored *serialized* (UTF-8 bytes) and parsed on access —
the same architecture that made the paper's per-document parse overhead
visible ("some pre-processing operations (e.g., parsing) are carried out
for each XML tree", §5). Storing bytes also forces every layer above to
round-trip through real serialization, so reconstruction annotations and
fragment metadata are honest.

Each document additionally carries a compact **binary node table**
(:class:`~repro.datamodel.binary.BinaryXMLDocument`), built once at
publish time over the collection's shared string pool. Indexes ingest
the table directly, predicate verification runs over it without a DOM,
and materialization decodes it instead of re-tokenizing text — the raw
bytes remain the canonical wire/serialization form.

Optional disk persistence keeps each collection in a directory of
``.xml`` files (plus ``<name>.xml.pxb`` node tables and one
``_pool.bin`` string pool) and a small metadata file, surviving engine
restarts without reparsing. Stores written before the binary encoding
existed — bare ``.xml`` files — load fine: the table is rebuilt by a
one-time parse.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Iterable, Optional

from repro.datamodel.binary import BinaryXMLDocument, StringPool
from repro.datamodel.document import XMLDocument
from repro.engine.indexes import (
    ElementIndex,
    FullTextIndex,
    PathIndex,
    RangeIndex,
    ValueIndex,
)
from repro.errors import CollectionNotFoundError, DocumentNotFoundError, StorageError
from repro.xmltext.parser import parse_xml
from repro.xmltext.serializer import serialize


class StoredDocument:
    """One serialized document plus its catalog metadata.

    ``binary`` is the preorder node table over the owning collection's
    string pool; :meth:`StoredCollection.put` fills it in when the
    caller didn't (e.g. a store loaded from bare ``.xml`` files).
    """

    __slots__ = ("name", "data", "origin", "binary")

    def __init__(
        self,
        name: str,
        data: bytes,
        origin: Optional[str] = None,
        binary: Optional[BinaryXMLDocument] = None,
    ):
        self.name = name
        self.data = data
        self.origin = origin or name
        self.binary = binary

    @property
    def size(self) -> int:
        return len(self.data)


class StoredCollection:
    """A named set of stored documents with their indexes."""

    def __init__(self, name: str, pool: Optional[StringPool] = None):
        self.name = name
        self.pool = pool if pool is not None else StringPool()
        self._documents: dict[str, StoredDocument] = {}
        self.fulltext = FullTextIndex()
        self.values = ValueIndex()
        self.elements = ElementIndex()
        self.ranges = RangeIndex()
        self.paths = PathIndex()

    # ------------------------------------------------------------------
    def put(self, stored: StoredDocument, document: Optional[XMLDocument] = None) -> None:
        """Insert (or replace) a document; indexes update from its table.

        The binary node table is built here — once, at publish time —
        unless the record already carries one (a persistence reload).
        ``document`` is the parsed tree when the caller already has it
        (avoids a redundant parse, like eXist indexing during ingestion);
        otherwise, and only when no table came along, the store parses
        once to encode.
        """
        if stored.name in self._documents:
            self.remove(stored.name)
        self._documents[stored.name] = stored
        binary = stored.binary
        if binary is None:
            tree = document if document is not None else parse_xml(
                stored.data.decode("utf-8"), name=stored.name
            )
            binary = BinaryXMLDocument.encode(tree, self.pool)
            stored.binary = binary
        self.fulltext.add_document(stored.name, binary)
        self.values.add_document(stored.name, binary)
        self.elements.add_document(stored.name, binary)
        self.ranges.add_document(stored.name, binary)
        self.paths.add_document(stored.name, binary)

    def remove(self, name: str) -> None:
        if name not in self._documents:
            raise DocumentNotFoundError(
                f"document {name!r} not in collection {self.name!r}"
            )
        del self._documents[name]
        self.fulltext.remove_document(name)
        self.values.remove_document(name)
        self.elements.remove_document(name)
        self.ranges.remove_document(name)
        self.paths.remove_document(name)

    def get(self, name: str) -> StoredDocument:
        try:
            return self._documents[name]
        except KeyError:
            raise DocumentNotFoundError(
                f"document {name!r} not in collection {self.name!r}"
            ) from None

    def names(self) -> list[str]:
        return list(self._documents.keys())

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, name: str) -> bool:
        return name in self._documents

    def total_bytes(self) -> int:
        return sum(doc.size for doc in self._documents.values())


class DocumentStore:
    """All collections of one engine instance, optionally disk-backed."""

    def __init__(self, storage_dir: Optional[str | Path] = None):
        self._collections: dict[str, StoredCollection] = {}
        self._storage_dir = Path(storage_dir) if storage_dir else None
        if self._storage_dir is not None:
            self._storage_dir.mkdir(parents=True, exist_ok=True)
            self._load_from_disk()

    # ------------------------------------------------------------------
    # Collection management
    # ------------------------------------------------------------------
    def create_collection(self, name: str) -> StoredCollection:
        if name in self._collections:
            raise StorageError(f"collection {name!r} already exists")
        collection = StoredCollection(name)
        self._collections[name] = collection
        if self._storage_dir is not None:
            (self._storage_dir / name).mkdir(parents=True, exist_ok=True)
            self._write_metadata(name)
        return collection

    def drop_collection(self, name: str) -> None:
        self.collection(name)  # raise if absent
        del self._collections[name]
        if self._storage_dir is not None:
            directory = self._storage_dir / name
            if directory.exists():
                for child in directory.iterdir():
                    child.unlink()
                directory.rmdir()

    def collection(self, name: str) -> StoredCollection:
        try:
            return self._collections[name]
        except KeyError:
            raise CollectionNotFoundError(f"no collection named {name!r}") from None

    def has_collection(self, name: str) -> bool:
        return name in self._collections

    def collection_names(self) -> list[str]:
        return list(self._collections.keys())

    # ------------------------------------------------------------------
    # Document management
    # ------------------------------------------------------------------
    def store_document(
        self,
        collection_name: str,
        document: XMLDocument | str | bytes,
        name: Optional[str] = None,
        origin: Optional[str] = None,
    ) -> StoredDocument:
        """Serialize (if needed) and store a document; returns the record."""
        collection = self.collection(collection_name)
        tree: Optional[XMLDocument] = None
        if isinstance(document, XMLDocument):
            tree = document
            data = serialize(document).encode("utf-8")
            name = name or document.name
            origin = origin or document.origin
        elif isinstance(document, str):
            data = document.encode("utf-8")
        else:
            data = document
        if name is None:
            name = f"{collection_name}-{len(collection):06d}.xml"
        stored = StoredDocument(name=name, data=data, origin=origin)
        collection.put(stored, document=tree)
        if self._storage_dir is not None:
            directory = self._storage_dir / collection_name
            (directory / name).write_bytes(data)
            assert stored.binary is not None  # put() always encodes
            (directory / (name + ".pxb")).write_bytes(stored.binary.to_bytes())
            # The pool is append-only, so rewriting it after each store
            # keeps every previously written table decodable.
            (directory / "_pool.bin").write_bytes(collection.pool.to_bytes())
            self._write_metadata(collection_name)
        return stored

    def load_document(self, collection_name: str, name: str) -> StoredDocument:
        return self.collection(collection_name).get(name)

    def remove_document(self, collection_name: str, name: str) -> None:
        self.collection(collection_name).remove(name)
        if self._storage_dir is not None:
            directory = self._storage_dir / collection_name
            for path in (directory / name, directory / (name + ".pxb")):
                if path.exists():
                    path.unlink()
            self._write_metadata(collection_name)

    # ------------------------------------------------------------------
    # Disk persistence
    # ------------------------------------------------------------------
    def _metadata_path(self, collection_name: str) -> Path:
        assert self._storage_dir is not None
        return self._storage_dir / collection_name / "_meta.json"

    def _write_metadata(self, collection_name: str) -> None:
        collection = self._collections[collection_name]
        meta = {
            name: {"origin": collection.get(name).origin}
            for name in collection.names()
        }
        self._metadata_path(collection_name).write_text(json.dumps(meta))

    def _load_from_disk(self) -> None:
        """Rebuild collections binary-first: when a ``.pxb`` node table
        and the pool are on disk, reload decodes them and never touches
        the XML text; documents missing a table (pre-binary stores, or a
        table that fails to decode) fall back to a one-time parse."""
        assert self._storage_dir is not None
        for directory in sorted(self._storage_dir.iterdir()):
            if not directory.is_dir():
                continue
            pool: Optional[StringPool] = None
            pool_path = directory / "_pool.bin"
            if pool_path.exists():
                try:
                    pool = StringPool.from_bytes(pool_path.read_bytes())
                except (ValueError, struct.error, UnicodeDecodeError):
                    pool = None
            collection = StoredCollection(directory.name, pool=pool)
            self._collections[directory.name] = collection
            meta_path = directory / "_meta.json"
            meta = (
                json.loads(meta_path.read_text()) if meta_path.exists() else {}
            )
            for path in sorted(directory.glob("*.xml")):
                origin = meta.get(path.name, {}).get("origin")
                binary: Optional[BinaryXMLDocument] = None
                table_path = directory / (path.name + ".pxb")
                if pool is not None and table_path.exists():
                    try:
                        binary = BinaryXMLDocument.from_bytes(
                            table_path.read_bytes(), collection.pool
                        )
                    except (ValueError, struct.error):
                        binary = None
                stored = StoredDocument(
                    name=path.name,
                    data=path.read_bytes(),
                    origin=origin,
                    binary=binary,
                )
                collection.put(stored)
