"""Execution statistics of the storage engine.

The reproduction's claims hinge on *why* fragmentation helps: less data
parsed and scanned per site. These counters make that visible — benchmark
reports print bytes parsed and documents scanned next to elapsed times,
and the ablation benches assert on them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EngineStats:
    """Cumulative counters of one engine instance.

    Engines never mutate a shared instance mid-query: each query charges a
    private accumulator and commits it once, under the engine's lock, via
    :meth:`absorb` — the invariant that keeps concurrent sub-queries from
    losing updates.
    """

    queries_executed: int = 0
    documents_parsed: int = 0
    bytes_parsed: int = 0
    documents_scanned: int = 0
    documents_pruned: int = 0
    index_lookups: int = 0
    #: Documents materialized from the binary node table instead of a
    #: text parse (a subset of ``documents_parsed``, which counts every
    #: materialization from storage regardless of path).
    binary_decodes: int = 0
    #: Index-candidate documents discarded by exact predicate evaluation
    #: over the binary encoding *before* any DOM was built.
    label_pruned: int = 0
    #: Parsed-document LRU cache hits (documents served without a re-parse).
    cache_hits: int = 0
    parse_seconds: float = 0.0
    evaluation_seconds: float = 0.0
    #: Simulated per-document access overhead (never slept; see
    #: XMLEngine.per_document_overhead). Kept separate so reports can
    #: distinguish measured from simulated time.
    simulated_overhead_seconds: float = 0.0

    def snapshot(self) -> "EngineStats":
        """An independent copy of the current counters."""
        return EngineStats(**vars(self))

    def diff(self, earlier: "EngineStats") -> "EngineStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return EngineStats(
            **{
                name: getattr(self, name) - getattr(earlier, name)
                for name in vars(self)
            }
        )

    def reset(self) -> None:
        for name in list(vars(self)):
            setattr(self, name, type(getattr(self, name))())

    def merged_with(self, other: "EngineStats") -> "EngineStats":
        """Sum of two counter sets (for cluster-wide aggregation)."""
        return EngineStats(
            **{
                name: getattr(self, name) + getattr(other, name)
                for name in vars(self)
            }
        )

    def absorb(self, delta: "EngineStats") -> None:
        """Add ``delta``'s counters in place (commit of a per-query
        accumulator; callers serialize commits with a lock)."""
        for name in vars(delta):
            setattr(self, name, getattr(self, name) + getattr(delta, name))


@dataclass
class QueryResult:
    """Outcome of one query execution on one engine.

    ``items`` is the result sequence (nodes and atomics). ``result_text``
    is the serialized result (what would travel over the network);
    ``result_bytes`` its UTF-8 size — the quantity the paper divides by
    the Gigabit-Ethernet speed to estimate transmission time.
    """

    items: list
    result_text: str
    result_bytes: int
    elapsed_seconds: float
    parse_seconds: float
    documents_parsed: int
    bytes_parsed: int
    documents_scanned: int
    documents_pruned: int
    cache_hits: int = 0
    simulated_overhead_seconds: float = 0.0
    binary_decodes: int = 0
    label_pruned: int = 0
    stats: EngineStats = field(repr=False, default_factory=EngineStats)

    @property
    def measured_seconds(self) -> float:
        """Elapsed time excluding the simulated per-document overhead."""
        return self.elapsed_seconds - self.simulated_overhead_seconds
