"""MiniX — the sequential XQuery-enabled XML DBMS used at each site.

This is the reproduction's stand-in for eXist: a single-node database
that stores collections of serialized XML documents, maintains document-
level indexes, and executes the XQuery subset. The execution pipeline per
query is:

1. parse the query and statically analyze it;
2. for each referenced collection, prune candidate documents through the
   indexes (text-search and equality predicates);
3. with indexes on, verify each candidate's predicate exactly over its
   binary node table (label pushdown) so non-matching documents never
   materialize;
4. materialize the survivors on access — decoding the binary table when
   present, else the parse-on-text path that made every touched document
   pay real parse cost (the effect behind the paper's superlinear
   fragmentation speedups, still the behaviour with ``use_indexes=False``);
5. evaluate and serialize the result.

``cache_parsed`` can keep parsed trees in an LRU cache; it defaults to
off so benchmarks model the paper's per-query parse behaviour, and the
ablation benchmark flips it on to quantify the difference.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Optional, Union

from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import XMLNode
from repro.engine.planner import Planner
from repro.engine.stats import EngineStats, QueryResult
from repro.engine.store import DocumentStore, StoredDocument
from repro.errors import (
    CollectionNotFoundError,
    StorageError,
    XQueryEvaluationError,
)
from repro.paths.predicates import Predicate
from repro.xmltext.parser import parse_xml
from repro.xmltext.serializer import serialize
from repro.xquery.analysis import analyze_query
from repro.xquery.ast_nodes import Expr
from repro.xquery.evaluator import DynamicContext, Evaluator
from repro.xquery.parser import parse_query
from repro.xquery.values import atomic_to_string


class XMLEngine:
    """A single-site XML database executing the XQuery subset.

    Parameters
    ----------
    name:
        Engine instance name (the site name in a cluster).
    storage_dir:
        When given, documents persist under this directory.
    cache_parsed:
        Keep up to ``cache_size`` parsed documents in memory. Off by
        default (see module docstring).
    use_indexes:
        Enable index-assisted document pruning.
    label_pushdown:
        When index pruning runs, verify each candidate's predicate
        exactly over its binary node table *before* materializing a DOM
        (see :func:`repro.paths.predicates.evaluate_on_binary`), so an
        index probe prunes to the truly matching documents. Sound because
        extracted predicates are necessary conditions and the binary
        evaluation is exact; a no-op when ``use_indexes`` is off (the
        paper-faithful mode scans everything).
    per_document_overhead:
        *Simulated* fixed cost (seconds) per document access, added to
        reported elapsed times but never slept. Models the per-document
        costs of a production DBMS (catalog lookup, locking, buffer-pool
        traffic, DOM table setup) that a dict-backed store lacks. The
        paper's own numbers imply ~9ms/document for eXist on 2005
        hardware (250MB as 125k small documents: 1200s, vs as 3.1k large
        documents: 31s). Defaults to 0 (pure measurement); the
        paper-faithful benchmark scenarios set a calibrated value. The
        amount added is tracked separately in
        ``stats.simulated_overhead_seconds``.
    """

    def __init__(
        self,
        name: str = "minix",
        storage_dir: Optional[str] = None,
        cache_parsed: bool = False,
        cache_size: int = 256,
        use_indexes: bool = True,
        label_pushdown: bool = True,
        per_document_overhead: float = 0.0,
    ):
        self.name = name
        self.store = DocumentStore(storage_dir=storage_dir)
        self.stats = EngineStats()
        self.planner = Planner(use_indexes=use_indexes)
        self.label_pushdown = label_pushdown
        self.cache_parsed = cache_parsed
        self.per_document_overhead = per_document_overhead
        self._cache: OrderedDict[tuple[str, str], XMLDocument] = OrderedDict()
        self._cache_size = cache_size
        # Concurrency: queries may run on several threads against one
        # engine (the cluster dispatcher's "threads" mode). Shared stats
        # only change via single locked commits of per-query accumulators,
        # and the parsed-document LRU is guarded by its own lock.
        self._stats_lock = threading.Lock()
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Data definition / manipulation
    # ------------------------------------------------------------------
    def create_collection(self, name: str) -> None:
        self.store.create_collection(name)

    def drop_collection(self, name: str) -> None:
        self.store.drop_collection(name)
        with self._cache_lock:
            self._cache = OrderedDict(
                (key, value)
                for key, value in self._cache.items()
                if key[0] != name
            )

    def has_collection(self, name: str) -> bool:
        return self.store.has_collection(name)

    def collection_names(self) -> list[str]:
        return self.store.collection_names()

    def store_document(
        self,
        collection: str,
        document: Union[XMLDocument, str, bytes],
        name: Optional[str] = None,
        origin: Optional[str] = None,
    ) -> StoredDocument:
        """Store one document into ``collection`` (created on demand)."""
        if not self.store.has_collection(collection):
            self.store.create_collection(collection)
        return self.store.store_document(collection, document, name=name, origin=origin)

    def _require_collection(self, name: str) -> None:
        """Fail with a clear engine-level error for a missing collection.

        The engine contract is strict (raise); the driver boundary is
        lenient (return 0) — see ``MiniXDriver.document_count``.
        """
        if not self.store.has_collection(name):
            raise CollectionNotFoundError(
                f"engine {self.name!r} has no collection {name!r}"
            )

    def document_count(self, collection: str) -> int:
        self._require_collection(collection)
        return len(self.store.collection(collection))

    def collection_bytes(self, collection: str) -> int:
        self._require_collection(collection)
        return self.store.collection(collection).total_bytes()

    def load_parsed(
        self,
        collection: str,
        name: str,
        stats: Optional[EngineStats] = None,
    ) -> XMLDocument:
        """Materialize-on-access with optional LRU caching; updates stats.

        Documents carrying a binary node table decode it (no tokenizer);
        only table-less records — old on-disk stores — pay a text parse.
        ``documents_parsed`` counts every materialization from storage
        either way; ``binary_decodes`` counts the fast-path subset.

        ``stats`` is the accumulator to charge — a query in flight passes
        its private per-query accumulator so concurrent queries never
        interleave read-modify-write cycles on the shared counters. Direct
        callers may omit it; the access is then committed to the engine's
        cumulative stats immediately (under the stats lock).

        A cache hit still charges ``per_document_overhead`` (and a
        ``cache_hits`` counter): the simulated per-document access cost
        models catalog lookup / locking / buffer traffic, which a real
        DBMS pays whether or not the parsed tree is resident.
        """
        key = (collection, name)
        charge = EngineStats() if stats is None else stats
        if self.cache_parsed:
            with self._cache_lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
            if cached is not None:
                charge.cache_hits += 1
                charge.simulated_overhead_seconds += self.per_document_overhead
                if stats is None:
                    self._commit_stats(charge)
                return cached
        stored = self.store.load_document(collection, name)
        started = time.perf_counter()
        if stored.binary is not None:
            document = stored.binary.materialize(name=name, origin=stored.origin)
            charge.binary_decodes += 1
        else:
            document = parse_xml(stored.data.decode("utf-8"), name=name)
            document.origin = stored.origin
        charge.parse_seconds += time.perf_counter() - started
        charge.documents_parsed += 1
        charge.bytes_parsed += stored.size
        charge.simulated_overhead_seconds += self.per_document_overhead
        if self.cache_parsed:
            with self._cache_lock:
                self._cache[key] = document
                if len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        if stats is None:
            self._commit_stats(charge)
        return document

    def _commit_stats(self, delta: EngineStats) -> None:
        """Fold a per-query accumulator into the shared counters."""
        with self._stats_lock:
            self.stats.absorb(delta)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Union[str, Expr],
        default_collection: Optional[str] = None,
        extra_predicate: Optional[Predicate] = None,
        use_indexes: Optional[bool] = None,
    ) -> QueryResult:
        """Execute a query and return its :class:`QueryResult`.

        ``default_collection`` resolves bare ``collection()`` calls.
        ``extra_predicate`` lets a coordinator push an additional pruning
        predicate (PartiX uses this when it knows a sub-query can only
        match documents satisfying a fragment's μ). ``use_indexes``
        overrides the engine's index setting for this query only — the
        knob an ``IndexScan`` plan leaf turns on at a site whose default
        is the paper-faithful full scan.
        """
        started = time.perf_counter()
        # Per-query accumulator: every counter this query touches lands
        # here first and is committed to the shared stats exactly once,
        # so concurrent queries cannot lose each other's updates (and the
        # reported deltas cannot include a neighbour's work).
        delta = EngineStats()
        expr = parse_query(query) if isinstance(query, str) else query
        analysis = analyze_query(expr)
        predicate = analysis.predicate
        if extra_predicate is not None:
            from repro.paths.predicates import And

            predicate = (
                extra_predicate
                if predicate is None
                else And((predicate, extra_predicate))
            )
        provider = _EngineProvider(
            self, default_collection, predicate, delta, use_indexes
        )
        eval_started = time.perf_counter()
        items = Evaluator().evaluate(expr, DynamicContext(provider=provider))
        delta.evaluation_seconds += time.perf_counter() - eval_started
        delta.queries_executed += 1
        result_text = serialize_sequence(items)
        elapsed = time.perf_counter() - started
        self._commit_stats(delta)
        with self._stats_lock:
            cumulative = self.stats.snapshot()
        return QueryResult(
            items=items,
            result_text=result_text,
            result_bytes=len(result_text.encode("utf-8")),
            elapsed_seconds=elapsed + delta.simulated_overhead_seconds,
            parse_seconds=delta.parse_seconds,
            documents_parsed=delta.documents_parsed,
            bytes_parsed=delta.bytes_parsed,
            documents_scanned=delta.documents_scanned,
            documents_pruned=delta.documents_pruned,
            cache_hits=delta.cache_hits,
            simulated_overhead_seconds=delta.simulated_overhead_seconds,
            binary_decodes=delta.binary_decodes,
            label_pruned=delta.label_pruned,
            stats=cumulative,
        )

    def execute_iter(
        self,
        query: Union[str, Expr],
        default_collection: Optional[str] = None,
        extra_predicate: Optional[Predicate] = None,
        use_indexes: Optional[bool] = None,
    ) -> "StreamedExecution":
        """Execute a query as a stream of per-item serialized pieces.

        Same pipeline as :meth:`execute`, but serialization is handed
        out item by item through the returned :class:`StreamedExecution`
        instead of being joined into one monolithic string — a consumer
        (the streaming site server) can put each piece on the wire while
        the next one is still being serialized.
        """
        started = time.perf_counter()
        delta = EngineStats()
        expr = parse_query(query) if isinstance(query, str) else query
        analysis = analyze_query(expr)
        predicate = analysis.predicate
        if extra_predicate is not None:
            from repro.paths.predicates import And

            predicate = (
                extra_predicate
                if predicate is None
                else And((predicate, extra_predicate))
            )
        provider = _EngineProvider(
            self, default_collection, predicate, delta, use_indexes
        )
        eval_started = time.perf_counter()
        items = Evaluator().evaluate(expr, DynamicContext(provider=provider))
        delta.evaluation_seconds += time.perf_counter() - eval_started
        delta.queries_executed += 1
        return StreamedExecution(self, items, delta, started)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def explain(
        self,
        query: Union[str, Expr],
        default_collection: Optional[str] = None,
    ) -> dict:
        """Describe how a query would execute, without executing it.

        Returns a dict with the extracted pruning ``predicate``, the
        top-level ``aggregate`` (if any), and per-collection candidate
        counts under the current indexes.
        """
        expr = parse_query(query) if isinstance(query, str) else query
        analysis = analyze_query(expr)
        collections = {}
        for name in analysis.collections:
            resolved = name or default_collection
            if resolved is None or not self.store.has_collection(resolved):
                continue
            collection = self.store.collection(resolved)
            candidates, lookups = self.planner.candidate_documents(
                collection, analysis.predicate
            )
            collections[resolved] = {
                "documents": len(collection),
                "candidates": len(candidates),
                "index_lookups": lookups,
            }
        return {
            "predicate": str(analysis.predicate) if analysis.predicate else None,
            "aggregate": analysis.aggregate,
            "uses_text_search": analysis.uses_text_search,
            "collections": collections,
        }


class _EngineProvider:
    """DocumentProvider backed by the engine's store and planner.

    All counters charge the query's private ``stats`` accumulator — never
    the engine's shared stats — so concurrent queries stay race-free.
    """

    def __init__(
        self,
        engine: XMLEngine,
        default_collection: Optional[str],
        predicate: Optional[Predicate],
        stats: EngineStats,
        use_indexes: Optional[bool] = None,
    ):
        self._engine = engine
        self._default = default_collection
        self._predicate = predicate
        self._stats = stats
        self._use_indexes = use_indexes

    def collection_roots(self, name: Optional[str]) -> list[XMLNode]:
        collection_name = name or self._default
        if collection_name is None:
            raise XQueryEvaluationError(
                "collection() without a name needs a default collection"
            )
        if not self._engine.store.has_collection(collection_name):
            raise StorageError(f"no collection named {collection_name!r}")
        engine = self._engine
        collection = engine.store.collection(collection_name)
        candidates, lookups = engine.planner.candidate_documents(
            collection, self._predicate, use_indexes=self._use_indexes
        )
        self._stats.index_lookups += lookups
        indexing = (
            engine.planner.use_indexes
            if self._use_indexes is None
            else self._use_indexes
        )
        if indexing and engine.label_pushdown and self._predicate is not None:
            candidates = self._verify_on_binary(collection, candidates)
        self._stats.documents_scanned += len(candidates)
        self._stats.documents_pruned += len(collection) - len(candidates)
        return [
            engine.load_parsed(
                collection_name, doc_name, stats=self._stats
            ).root
            for doc_name in candidates
        ]

    def _verify_on_binary(self, collection, candidates: list[str]) -> list[str]:
        """Exact pushdown: evaluate the predicate over each candidate's
        binary node table and drop definite non-matches before any DOM is
        built. Sound because extracted predicates are *necessary*
        conditions (planner invariant) and the binary evaluation mirrors
        DOM evaluation exactly; undecidable atoms (``None``) keep the
        document, as does a record with no table."""
        from repro.paths.predicates import evaluate_on_binary

        verified: list[str] = []
        for doc_name in candidates:
            binary = collection.get(doc_name).binary
            if binary is not None and evaluate_on_binary(
                self._predicate, binary
            ) is False:
                self._stats.label_pruned += 1
                continue
            verified.append(doc_name)
        return verified

    def document_root(self, name: str) -> Optional[XMLNode]:
        for collection_name in self._engine.store.collection_names():
            collection = self._engine.store.collection(collection_name)
            if name in collection:
                self._stats.documents_scanned += 1
                return self._engine.load_parsed(
                    collection_name, name, stats=self._stats
                ).root
        return None


class StreamedExecution:
    """One query's result as per-item serialized pieces.

    Iterating yields each item's serialized string (XML for nodes, the
    canonical atomic form otherwise). The monolithic answer is exactly
    ``"\\n".join(pieces)`` — the contract both the streaming wire path
    and the incremental composer rely on, and by construction identical
    to :func:`serialize_sequence` over the same items.

    ``result`` is ``None`` until iteration completes; afterwards it holds
    the same :class:`QueryResult` :meth:`XMLEngine.execute` would have
    returned, except ``result_text`` stays empty (the text went to the
    consumer piece by piece) and ``result_bytes`` counts the streamed
    bytes, separators included.
    """

    def __init__(
        self,
        engine: XMLEngine,
        items: list,
        delta: EngineStats,
        started: float,
    ):
        self._engine = engine
        self._delta = delta
        self._started = started
        self.items = items
        self.result: Optional[QueryResult] = None

    def __iter__(self):
        streamed_bytes = 0
        for index, item in enumerate(self.items):
            if isinstance(item, XMLNode):
                piece = serialize(item)
            else:
                piece = atomic_to_string(item)
            if index:
                streamed_bytes += 1  # the "\n" separator before this piece
            streamed_bytes += len(piece.encode("utf-8"))
            yield piece
        self._finish(streamed_bytes)

    def _finish(self, streamed_bytes: int) -> None:
        engine, delta = self._engine, self._delta
        elapsed = time.perf_counter() - self._started
        engine._commit_stats(delta)
        with engine._stats_lock:
            cumulative = engine.stats.snapshot()
        self.result = QueryResult(
            items=self.items,
            result_text="",
            result_bytes=streamed_bytes,
            elapsed_seconds=elapsed + delta.simulated_overhead_seconds,
            parse_seconds=delta.parse_seconds,
            documents_parsed=delta.documents_parsed,
            bytes_parsed=delta.bytes_parsed,
            documents_scanned=delta.documents_scanned,
            documents_pruned=delta.documents_pruned,
            cache_hits=delta.cache_hits,
            simulated_overhead_seconds=delta.simulated_overhead_seconds,
            binary_decodes=delta.binary_decodes,
            label_pruned=delta.label_pruned,
            stats=cumulative,
        )


def serialize_sequence(items: list) -> str:
    """Serialize a result sequence the way a driver would ship it."""
    parts = []
    for item in items:
        if isinstance(item, XMLNode):
            parts.append(serialize(item))
        else:
            parts.append(atomic_to_string(item))
    return "\n".join(parts)
