"""MiniX — the sequential XQuery-enabled XML DBMS used at each site.

This is the reproduction's stand-in for eXist: a single-node database
that stores collections of serialized XML documents, maintains document-
level indexes, and executes the XQuery subset. The execution pipeline per
query is:

1. parse the query and statically analyze it;
2. for each referenced collection, prune candidate documents through the
   indexes (text-search and equality predicates);
3. with indexes on, verify each candidate's predicate exactly over its
   binary node table (label pushdown) so non-matching documents never
   materialize;
4. materialize the survivors on access — decoding the binary table when
   present, else the parse-on-text path that made every touched document
   pay real parse cost (the effect behind the paper's superlinear
   fragmentation speedups, still the behaviour with ``use_indexes=False``);
5. evaluate and serialize the result.

``cache_parsed`` can keep parsed trees in an LRU cache; it defaults to
off so benchmarks model the paper's per-query parse behaviour, and the
ablation benchmark flips it on to quantify the difference.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Union

from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import XMLNode
from repro.engine.planner import Planner
from repro.engine.shards import (
    ShardDocument,
    ShardScript,
    ShardTask,
    fold_shard_results,
    forget_fork_snapshot,
    new_fork_token,
    partition_candidates,
    register_fork_snapshot,
    run_shard,
    shard_script,
)
from repro.engine.stats import EngineStats, QueryResult
from repro.engine.store import DocumentStore, StoredDocument
from repro.errors import (
    CollectionNotFoundError,
    StorageError,
    XQueryEvaluationError,
)
from repro.paths.predicates import Predicate
from repro.xmltext.parser import parse_xml
from repro.xmltext.serializer import serialize
from repro.xquery.analysis import analyze_query
from repro.xquery.ast_nodes import Expr
from repro.xquery.evaluator import DynamicContext, Evaluator
from repro.xquery.parser import parse_query
from repro.xquery.values import atomic_to_string


class XMLEngine:
    """A single-site XML database executing the XQuery subset.

    Parameters
    ----------
    name:
        Engine instance name (the site name in a cluster).
    storage_dir:
        When given, documents persist under this directory.
    cache_parsed:
        Keep up to ``cache_size`` parsed documents in memory. Off by
        default (see module docstring).
    use_indexes:
        Enable index-assisted document pruning.
    label_pushdown:
        When index pruning runs, verify each candidate's predicate
        exactly over its binary node table *before* materializing a DOM
        (see :func:`repro.paths.predicates.evaluate_on_binary`), so an
        index probe prunes to the truly matching documents. Sound because
        extracted predicates are necessary conditions and the binary
        evaluation is exact; a no-op when ``use_indexes`` is off (the
        paper-faithful mode scans everything).
    per_document_overhead:
        *Simulated* fixed cost (seconds) per document access, added to
        reported elapsed times but never slept. Models the per-document
        costs of a production DBMS (catalog lookup, locking, buffer-pool
        traffic, DOM table setup) that a dict-backed store lacks. The
        paper's own numbers imply ~9ms/document for eXist on 2005
        hardware (250MB as 125k small documents: 1200s, vs as 3.1k large
        documents: 31s). Defaults to 0 (pure measurement); the
        paper-faithful benchmark scenarios set a calibrated value. The
        amount added is tracked separately in
        ``stats.simulated_overhead_seconds``.
    shard_workers:
        Size of the engine's shard worker pool (0 = intra-site
        parallelism disabled). A query only runs sharded when an
        executing call also passes ``parallel_degree`` ≥ 2 — the plan's
        decision, or an explicit per-query override — *and* the query is
        provably shardable (see :mod:`repro.engine.shards`); everything
        else silently runs serial, so answers are byte-identical at
        every degree. The process pool is created lazily on the first
        sharded execution.
    """

    def __init__(
        self,
        name: str = "minix",
        storage_dir: Optional[str] = None,
        cache_parsed: bool = False,
        cache_size: int = 256,
        use_indexes: bool = True,
        label_pushdown: bool = True,
        per_document_overhead: float = 0.0,
        shard_workers: int = 0,
    ):
        self.name = name
        self.store = DocumentStore(storage_dir=storage_dir)
        self.stats = EngineStats()
        self.planner = Planner(use_indexes=use_indexes)
        self.label_pushdown = label_pushdown
        self.cache_parsed = cache_parsed
        self.per_document_overhead = per_document_overhead
        self.shard_workers = max(0, int(shard_workers))
        self._cache: OrderedDict[tuple[str, str], XMLDocument] = OrderedDict()
        self._cache_size = cache_size
        # Concurrency: queries may run on several threads against one
        # engine (the cluster dispatcher's "threads" mode). Shared stats
        # only change via single locked commits of per-query accumulators,
        # and the parsed-document LRU is guarded by its own lock.
        self._stats_lock = threading.Lock()
        self._cache_lock = threading.Lock()
        self._shard_pool: Optional[ProcessPoolExecutor] = None
        self._shard_pool_lock = threading.Lock()
        self._fork_token: Optional[int] = None
        self._fork_snapshot: Optional[dict] = None

    # ------------------------------------------------------------------
    # Data definition / manipulation
    # ------------------------------------------------------------------
    def create_collection(self, name: str) -> None:
        self.store.create_collection(name)

    def drop_collection(self, name: str) -> None:
        self.store.drop_collection(name)
        with self._cache_lock:
            self._cache = OrderedDict(
                (key, value)
                for key, value in self._cache.items()
                if key[0] != name
            )

    def has_collection(self, name: str) -> bool:
        return self.store.has_collection(name)

    def collection_names(self) -> list[str]:
        return self.store.collection_names()

    def store_document(
        self,
        collection: str,
        document: Union[XMLDocument, str, bytes],
        name: Optional[str] = None,
        origin: Optional[str] = None,
    ) -> StoredDocument:
        """Store one document into ``collection`` (created on demand)."""
        if not self.store.has_collection(collection):
            self.store.create_collection(collection)
        return self.store.store_document(collection, document, name=name, origin=origin)

    def _require_collection(self, name: str) -> None:
        """Fail with a clear engine-level error for a missing collection.

        The engine contract is strict (raise); the driver boundary is
        lenient (return 0) — see ``MiniXDriver.document_count``.
        """
        if not self.store.has_collection(name):
            raise CollectionNotFoundError(
                f"engine {self.name!r} has no collection {name!r}"
            )

    def document_count(self, collection: str) -> int:
        self._require_collection(collection)
        return len(self.store.collection(collection))

    def collection_bytes(self, collection: str) -> int:
        self._require_collection(collection)
        return self.store.collection(collection).total_bytes()

    def load_parsed(
        self,
        collection: str,
        name: str,
        stats: Optional[EngineStats] = None,
    ) -> XMLDocument:
        """Materialize-on-access with optional LRU caching; updates stats.

        Documents carrying a binary node table decode it (no tokenizer);
        only table-less records — old on-disk stores — pay a text parse.
        ``documents_parsed`` counts every materialization from storage
        either way; ``binary_decodes`` counts the fast-path subset.

        ``stats`` is the accumulator to charge — a query in flight passes
        its private per-query accumulator so concurrent queries never
        interleave read-modify-write cycles on the shared counters. Direct
        callers may omit it; the access is then committed to the engine's
        cumulative stats immediately (under the stats lock).

        A cache hit still charges ``per_document_overhead`` (and a
        ``cache_hits`` counter): the simulated per-document access cost
        models catalog lookup / locking / buffer traffic, which a real
        DBMS pays whether or not the parsed tree is resident.
        """
        key = (collection, name)
        charge = EngineStats() if stats is None else stats
        if self.cache_parsed:
            with self._cache_lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
            if cached is not None:
                charge.cache_hits += 1
                charge.simulated_overhead_seconds += self.per_document_overhead
                if stats is None:
                    self._commit_stats(charge)
                return cached
        stored = self.store.load_document(collection, name)
        started = time.perf_counter()
        if stored.binary is not None:
            document = stored.binary.materialize(name=name, origin=stored.origin)
            charge.binary_decodes += 1
        else:
            document = parse_xml(stored.data.decode("utf-8"), name=name)
            document.origin = stored.origin
        charge.parse_seconds += time.perf_counter() - started
        charge.documents_parsed += 1
        charge.bytes_parsed += stored.size
        charge.simulated_overhead_seconds += self.per_document_overhead
        if self.cache_parsed:
            with self._cache_lock:
                self._cache[key] = document
                if len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        if stats is None:
            self._commit_stats(charge)
        return document

    def _commit_stats(self, delta: EngineStats) -> None:
        """Fold a per-query accumulator into the shared counters."""
        with self._stats_lock:
            self.stats.absorb(delta)

    # ------------------------------------------------------------------
    # Shard worker pool (intra-site parallelism)
    # ------------------------------------------------------------------
    def _shard_executor(self) -> ProcessPoolExecutor:
        """The lazily created per-engine process pool (fork-preferring,
        like the TCP site-server spawner: workers inherit the imported
        modules instead of re-importing under spawn).

        On fork platforms a snapshot of every stored binary table is
        registered *before* the fork, so workers inherit the tables
        copy-on-write — a task over already-stored documents ships only
        their names. Under spawn there is nothing to inherit and every
        task carries explicit table bytes.
        """
        with self._shard_pool_lock:
            if self._shard_pool is None:
                context = None
                if "fork" in multiprocessing.get_all_start_methods():
                    context = multiprocessing.get_context("fork")
                if context is not None:
                    snapshot = {}
                    for collection_name in self.store.collection_names():
                        collection = self.store.collection(collection_name)
                        for doc_name in collection.names():
                            stored = collection.get(doc_name)
                            if stored.binary is not None:
                                snapshot[
                                    (collection_name, doc_name)
                                ] = stored.binary
                    self._fork_token = new_fork_token()
                    self._fork_snapshot = snapshot
                    register_fork_snapshot(self._fork_token, snapshot)
                self._shard_pool = ProcessPoolExecutor(
                    max_workers=max(1, self.shard_workers),
                    mp_context=context,
                )
            return self._shard_pool

    def close(self) -> None:
        """Release the shard worker pool (idempotent)."""
        with self._shard_pool_lock:
            pool, self._shard_pool = self._shard_pool, None
            forget_fork_snapshot(self._fork_token)
            self._fork_token = None
            self._fork_snapshot = None
        if pool is not None:
            pool.shutdown(wait=True)

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def scan_candidates(
        self,
        collection_name: str,
        predicate: Optional[Predicate],
        stats: EngineStats,
        use_indexes: Optional[bool] = None,
    ) -> list[str]:
        """The pipeline's **scan/prune** stage: candidate documents of a
        collection under the (combined) pruning predicate, in store
        order, with every pruning counter charged to ``stats``.

        Shared by the serial path (`_EngineProvider.collection_roots`
        materializes each survivor) and the sharded path (survivors are
        partitioned into shards instead) — one code path, one set of
        counters, so per-shard stats can sum exactly to a serial run.
        """
        collection = self.store.collection(collection_name)
        candidates, lookups = self.planner.candidate_documents(
            collection, predicate, use_indexes=use_indexes
        )
        stats.index_lookups += lookups
        indexing = (
            self.planner.use_indexes if use_indexes is None else use_indexes
        )
        if indexing and self.label_pushdown and predicate is not None:
            candidates = self._verify_on_binary(
                collection, predicate, candidates, stats
            )
        stats.documents_scanned += len(candidates)
        stats.documents_pruned += len(collection) - len(candidates)
        return candidates

    def _verify_on_binary(
        self,
        collection,
        predicate: Predicate,
        candidates: list[str],
        stats: EngineStats,
    ) -> list[str]:
        """Exact pushdown: evaluate the predicate over each candidate's
        binary node table and drop definite non-matches before any DOM is
        built. Sound because extracted predicates are *necessary*
        conditions (planner invariant) and the binary evaluation mirrors
        DOM evaluation exactly; undecidable atoms (``None``) keep the
        document, as does a record with no table."""
        from repro.paths.predicates import evaluate_on_binary

        verified: list[str] = []
        for doc_name in candidates:
            binary = collection.get(doc_name).binary
            if binary is not None and evaluate_on_binary(
                predicate, binary
            ) is False:
                stats.label_pruned += 1
                continue
            verified.append(doc_name)
        return verified

    def _shard_plan(
        self,
        query: Union[str, Expr],
        expr: Expr,
        analysis,
        default_collection: Optional[str],
        parallel_degree: Optional[int],
    ) -> Optional[tuple[ShardScript, str]]:
        """Decide whether this execution runs sharded.

        Returns ``(script, collection_name)`` when every gate passes:
        a degree ≥ 2 was requested, the engine has a worker pool
        configured, the query arrived as text (the wire form — shards
        re-parse it in the workers), the query is statically shardable,
        and its one collection resolves here. Any other case returns
        None and the serial path runs, keeping behaviour — answers and
        errors — identical at every requested degree.
        """
        if parallel_degree is None or parallel_degree <= 1:
            return None
        if self.shard_workers <= 0 or not isinstance(query, str):
            return None
        if multiprocessing.current_process().daemon:
            # A daemonic process (a spawned TCP site server) cannot have
            # children, so no worker pool can exist here — decline and
            # run serial, the same answer either way.
            return None
        script = shard_script(expr)
        if script is None:
            return None
        names = set(analysis.collections)
        if len(names) != 1:
            return None
        collection_name = names.pop() or default_collection
        if collection_name is None or not self.store.has_collection(
            collection_name
        ):
            return None
        return script, collection_name

    def _evaluate_sharded(
        self,
        query: str,
        script: ShardScript,
        collection_name: str,
        candidates: list[str],
        degree: int,
        delta: EngineStats,
    ) -> tuple[list, str, float]:
        """The pipeline's sharded **evaluate → fold** stages: partition
        the pruned candidates, evaluate each shard in the worker pool on
        its binary node tables, absorb the per-shard stats, and fold the
        partials in shard order.

        The third return value is the *parallel* simulated-overhead
        share: shards accrue the per-document access overhead
        concurrently, so the query's elapsed time advances by the
        slowest shard's overhead, while the ``simulated_overhead_seconds``
        counter in ``delta`` still sums every shard's charge exactly (the
        work done does not shrink because it ran in parallel)."""
        # Create (or reuse) the pool first: the fork snapshot it
        # registers decides which documents can ship as names only.
        executor = self._shard_executor()
        collection = self.store.collection(collection_name)
        snapshot = self._fork_snapshot or {}
        pool_bytes = None
        tasks = []
        for shard in partition_candidates(candidates, degree):
            documents = []
            for doc_name in shard:
                stored = collection.get(doc_name)
                # Identity, not equality: only the exact object the
                # workers inherited at fork time may ship by name; a
                # document re-stored since then ships its bytes.
                inherited = (
                    snapshot.get((collection_name, doc_name))
                    is stored.binary
                )
                if not inherited and pool_bytes is None:
                    pool_bytes = collection.pool.to_bytes()
                documents.append(
                    ShardDocument(
                        name=stored.name,
                        origin=stored.origin,
                        table=None if inherited else stored.binary.to_bytes(),
                        size=stored.size,
                    )
                )
            tasks.append(
                ShardTask(
                    query=query,
                    script=script,
                    pool=None,
                    documents=documents,
                    per_document_overhead=self.per_document_overhead,
                    token=self._fork_token or 0,
                    collection=collection_name,
                    cache_documents=self.cache_parsed,
                )
            )
        if pool_bytes is not None:
            for task in tasks:
                task.pool = pool_bytes
        eval_started = time.perf_counter()
        futures = [executor.submit(run_shard, task) for task in tasks]
        results = [future.result() for future in futures]
        for result in results:
            delta.absorb(EngineStats(**result.stats))
        items, result_text = fold_shard_results(script, results)
        delta.evaluation_seconds += time.perf_counter() - eval_started
        parallel_overhead = max(
            (
                result.stats.get("simulated_overhead_seconds", 0.0)
                for result in results
            ),
            default=0.0,
        )
        return items, result_text, parallel_overhead

    def execute(
        self,
        query: Union[str, Expr],
        default_collection: Optional[str] = None,
        extra_predicate: Optional[Predicate] = None,
        use_indexes: Optional[bool] = None,
        parallel_degree: Optional[int] = None,
    ) -> QueryResult:
        """Execute a query and return its :class:`QueryResult`.

        ``default_collection`` resolves bare ``collection()`` calls.
        ``extra_predicate`` lets a coordinator push an additional pruning
        predicate (PartiX uses this when it knows a sub-query can only
        match documents satisfying a fragment's μ). ``use_indexes``
        overrides the engine's index setting for this query only — the
        knob an ``IndexScan`` plan leaf turns on at a site whose default
        is the paper-faithful full scan. ``parallel_degree`` ≥ 2 asks
        for sharded evaluation across the engine's worker pool (a
        request, not a command — see :meth:`_shard_plan`); the answer is
        byte-identical either way.

        Execution is an explicit site-local operator pipeline:
        **scan/prune** (:meth:`scan_candidates`) → **evaluate** (serial
        in-process, or per-shard in the worker pool) → **fold** (merge
        shard partials in shard order; the serial path's fold is the
        identity).
        """
        started = time.perf_counter()
        # Per-query accumulator: every counter this query touches lands
        # here first and is committed to the shared stats exactly once,
        # so concurrent queries cannot lose each other's updates (and the
        # reported deltas cannot include a neighbour's work).
        delta = EngineStats()
        expr = parse_query(query) if isinstance(query, str) else query
        analysis = analyze_query(expr)
        predicate = analysis.predicate
        if extra_predicate is not None:
            from repro.paths.predicates import And

            predicate = (
                extra_predicate
                if predicate is None
                else And((predicate, extra_predicate))
            )
        sharded = self._shard_plan(
            query, expr, analysis, default_collection, parallel_degree
        )
        if sharded is not None:
            script, collection_name = sharded
            # Scan/prune runs once, in the parent — the very same stage
            # (and counters) the serial provider uses.
            candidates = self.scan_candidates(
                collection_name, predicate, delta, use_indexes=use_indexes
            )
            degree = min(parallel_degree, self.shard_workers, len(candidates))
            if degree >= 2:
                overhead_before = delta.simulated_overhead_seconds
                items, result_text, parallel_overhead = self._evaluate_sharded(
                    query, script, collection_name, candidates, degree, delta
                )
                delta.queries_executed += 1
                elapsed = time.perf_counter() - started
                self._commit_stats(delta)
                with self._stats_lock:
                    cumulative = self.stats.snapshot()
                return QueryResult(
                    items=items,
                    result_text=result_text,
                    result_bytes=len(result_text.encode("utf-8")),
                    elapsed_seconds=(
                        elapsed + overhead_before + parallel_overhead
                    ),
                    parse_seconds=delta.parse_seconds,
                    documents_parsed=delta.documents_parsed,
                    bytes_parsed=delta.bytes_parsed,
                    documents_scanned=delta.documents_scanned,
                    documents_pruned=delta.documents_pruned,
                    cache_hits=delta.cache_hits,
                    simulated_overhead_seconds=delta.simulated_overhead_seconds,
                    binary_decodes=delta.binary_decodes,
                    label_pruned=delta.label_pruned,
                    stats=cumulative,
                )
            # Too few candidates to amortize a shard: pre-charge nothing
            # extra — the provider below re-runs scan/prune against a
            # fresh accumulator so counters are charged exactly once.
            delta = EngineStats()
        provider = _EngineProvider(
            self, default_collection, predicate, delta, use_indexes
        )
        eval_started = time.perf_counter()
        items = Evaluator().evaluate(expr, DynamicContext(provider=provider))
        delta.evaluation_seconds += time.perf_counter() - eval_started
        delta.queries_executed += 1
        result_text = serialize_sequence(items)
        elapsed = time.perf_counter() - started
        self._commit_stats(delta)
        with self._stats_lock:
            cumulative = self.stats.snapshot()
        return QueryResult(
            items=items,
            result_text=result_text,
            result_bytes=len(result_text.encode("utf-8")),
            elapsed_seconds=elapsed + delta.simulated_overhead_seconds,
            parse_seconds=delta.parse_seconds,
            documents_parsed=delta.documents_parsed,
            bytes_parsed=delta.bytes_parsed,
            documents_scanned=delta.documents_scanned,
            documents_pruned=delta.documents_pruned,
            cache_hits=delta.cache_hits,
            simulated_overhead_seconds=delta.simulated_overhead_seconds,
            binary_decodes=delta.binary_decodes,
            label_pruned=delta.label_pruned,
            stats=cumulative,
        )

    def execute_iter(
        self,
        query: Union[str, Expr],
        default_collection: Optional[str] = None,
        extra_predicate: Optional[Predicate] = None,
        use_indexes: Optional[bool] = None,
        parallel_degree: Optional[int] = None,
    ) -> "StreamedExecution":
        """Execute a query as a stream of per-item serialized pieces.

        Same pipeline as :meth:`execute`, but serialization is handed
        out item by item through the returned :class:`StreamedExecution`
        instead of being joined into one monolithic string — a consumer
        (the streaming site server) can put each piece on the wire while
        the next one is still being serialized.

        A sharded request (``parallel_degree`` ≥ 2) evaluates through
        :meth:`execute` — shard partials fold into the final text, which
        streams as one piece. The stream contract is unchanged: the
        ``"\\n"``-join of the pieces is exactly the serialized answer.
        """
        if parallel_degree is not None and parallel_degree > 1:
            result = self.execute(
                query,
                default_collection=default_collection,
                extra_predicate=extra_predicate,
                use_indexes=use_indexes,
                parallel_degree=parallel_degree,
            )
            return StreamedExecution.from_result(self, result)
        started = time.perf_counter()
        delta = EngineStats()
        expr = parse_query(query) if isinstance(query, str) else query
        analysis = analyze_query(expr)
        predicate = analysis.predicate
        if extra_predicate is not None:
            from repro.paths.predicates import And

            predicate = (
                extra_predicate
                if predicate is None
                else And((predicate, extra_predicate))
            )
        provider = _EngineProvider(
            self, default_collection, predicate, delta, use_indexes
        )
        eval_started = time.perf_counter()
        items = Evaluator().evaluate(expr, DynamicContext(provider=provider))
        delta.evaluation_seconds += time.perf_counter() - eval_started
        delta.queries_executed += 1
        return StreamedExecution(self, items, delta, started)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def explain(
        self,
        query: Union[str, Expr],
        default_collection: Optional[str] = None,
    ) -> dict:
        """Describe how a query would execute, without executing it.

        Returns a dict with the extracted pruning ``predicate``, the
        top-level ``aggregate`` (if any), and per-collection candidate
        counts under the current indexes.
        """
        expr = parse_query(query) if isinstance(query, str) else query
        analysis = analyze_query(expr)
        collections = {}
        for name in analysis.collections:
            resolved = name or default_collection
            if resolved is None or not self.store.has_collection(resolved):
                continue
            collection = self.store.collection(resolved)
            candidates, lookups = self.planner.candidate_documents(
                collection, analysis.predicate
            )
            collections[resolved] = {
                "documents": len(collection),
                "candidates": len(candidates),
                "index_lookups": lookups,
            }
        return {
            "predicate": str(analysis.predicate) if analysis.predicate else None,
            "aggregate": analysis.aggregate,
            "uses_text_search": analysis.uses_text_search,
            "collections": collections,
        }


class _EngineProvider:
    """DocumentProvider backed by the engine's store and planner.

    All counters charge the query's private ``stats`` accumulator — never
    the engine's shared stats — so concurrent queries stay race-free.
    """

    def __init__(
        self,
        engine: XMLEngine,
        default_collection: Optional[str],
        predicate: Optional[Predicate],
        stats: EngineStats,
        use_indexes: Optional[bool] = None,
    ):
        self._engine = engine
        self._default = default_collection
        self._predicate = predicate
        self._stats = stats
        self._use_indexes = use_indexes

    def collection_roots(self, name: Optional[str]) -> list[XMLNode]:
        collection_name = name or self._default
        if collection_name is None:
            raise XQueryEvaluationError(
                "collection() without a name needs a default collection"
            )
        if not self._engine.store.has_collection(collection_name):
            raise StorageError(f"no collection named {collection_name!r}")
        engine = self._engine
        # The shared scan/prune stage, then materialize each survivor —
        # the serial "evaluate" stage loads DOMs in-process.
        candidates = engine.scan_candidates(
            collection_name,
            self._predicate,
            self._stats,
            use_indexes=self._use_indexes,
        )
        return [
            engine.load_parsed(
                collection_name, doc_name, stats=self._stats
            ).root
            for doc_name in candidates
        ]

    def document_root(self, name: str) -> Optional[XMLNode]:
        for collection_name in self._engine.store.collection_names():
            collection = self._engine.store.collection(collection_name)
            if name in collection:
                self._stats.documents_scanned += 1
                return self._engine.load_parsed(
                    collection_name, name, stats=self._stats
                ).root
        return None


class StreamedExecution:
    """One query's result as per-item serialized pieces.

    Iterating yields each item's serialized string (XML for nodes, the
    canonical atomic form otherwise). The monolithic answer is exactly
    ``"\\n".join(pieces)`` — the contract both the streaming wire path
    and the incremental composer rely on, and by construction identical
    to :func:`serialize_sequence` over the same items.

    ``result`` is ``None`` until iteration completes; afterwards it holds
    the same :class:`QueryResult` :meth:`XMLEngine.execute` would have
    returned, except ``result_text`` stays empty (the text went to the
    consumer piece by piece) and ``result_bytes`` counts the streamed
    bytes, separators included.
    """

    def __init__(
        self,
        engine: XMLEngine,
        items: list,
        delta: EngineStats,
        started: float,
    ):
        self._engine = engine
        self._delta = delta
        self._started = started
        self.items = items
        self.result: Optional[QueryResult] = None
        self._prefolded: Optional[QueryResult] = None

    @classmethod
    def from_result(
        cls, engine: XMLEngine, result: QueryResult
    ) -> "StreamedExecution":
        """Wrap an already-folded (sharded) result as a stream.

        The folded answer text travels as a single piece — the
        ``"\\n"``-join contract holds trivially, and the final
        :class:`QueryResult` is the sharded execution's own (its stats
        were already committed by :meth:`XMLEngine.execute`)."""
        stream = cls(engine, result.items, EngineStats(), 0.0)
        stream._prefolded = result
        return stream

    def __iter__(self):
        if self._prefolded is not None:
            prefolded = self._prefolded
            if prefolded.result_text:
                yield prefolded.result_text
            self.result = QueryResult(
                items=prefolded.items,
                result_text="",
                result_bytes=len(prefolded.result_text.encode("utf-8")),
                elapsed_seconds=prefolded.elapsed_seconds,
                parse_seconds=prefolded.parse_seconds,
                documents_parsed=prefolded.documents_parsed,
                bytes_parsed=prefolded.bytes_parsed,
                documents_scanned=prefolded.documents_scanned,
                documents_pruned=prefolded.documents_pruned,
                cache_hits=prefolded.cache_hits,
                simulated_overhead_seconds=(
                    prefolded.simulated_overhead_seconds
                ),
                binary_decodes=prefolded.binary_decodes,
                label_pruned=prefolded.label_pruned,
                stats=prefolded.stats,
            )
            return
        streamed_bytes = 0
        for index, item in enumerate(self.items):
            if isinstance(item, XMLNode):
                piece = serialize(item)
            else:
                piece = atomic_to_string(item)
            if index:
                streamed_bytes += 1  # the "\n" separator before this piece
            streamed_bytes += len(piece.encode("utf-8"))
            yield piece
        self._finish(streamed_bytes)

    def _finish(self, streamed_bytes: int) -> None:
        engine, delta = self._engine, self._delta
        elapsed = time.perf_counter() - self._started
        engine._commit_stats(delta)
        with engine._stats_lock:
            cumulative = engine.stats.snapshot()
        self.result = QueryResult(
            items=self.items,
            result_text="",
            result_bytes=streamed_bytes,
            elapsed_seconds=elapsed + delta.simulated_overhead_seconds,
            parse_seconds=delta.parse_seconds,
            documents_parsed=delta.documents_parsed,
            bytes_parsed=delta.bytes_parsed,
            documents_scanned=delta.documents_scanned,
            documents_pruned=delta.documents_pruned,
            cache_hits=delta.cache_hits,
            simulated_overhead_seconds=delta.simulated_overhead_seconds,
            binary_decodes=delta.binary_decodes,
            label_pruned=delta.label_pruned,
            stats=cumulative,
        )


def serialize_sequence(items: list) -> str:
    """Serialize a result sequence the way a driver would ship it."""
    parts = []
    for item in items:
        if isinstance(item, XMLNode):
            parts.append(serialize(item))
        else:
            parts.append(atomic_to_string(item))
    return "\n".join(parts)
